#include "match/cfl_match.h"

#include <unordered_map>

#include "check/check.h"
#include "check/validate.h"
#include "cpi/root_select.h"
#include "decomp/cfl_decomposition.h"
#include "decomp/two_core.h"
#include "match/enumerator.h"
#include "match/leaf_match.h"
#include "obs/clock.h"
#include "order/cardinality.h"

namespace cfl {

using obs::WallTimer;

CflMatcher::CflMatcher(const Graph& data)
    : data_(data), label_degree_index_(data), cpi_builder_(data) {
  if (check::DebugValidationEnabled()) {
    ValidationResult r = ValidateGraph(data);
    CFL_CHECK(r.ok) << " — data graph invalid: " << r.error;
  }
}

double CflMatcher::EstimateEmbeddings(const Graph& q) {
  std::vector<VertexId> core = TwoCoreVertices(q);
  std::vector<VertexId> choices = core;
  if (choices.empty()) {
    for (VertexId u = 0; u < q.NumVertices(); ++u) choices.push_back(u);
  }
  VertexId root = SelectRoot(q, data_, label_degree_index_, choices);
  BfsTree tree = BuildBfsTree(q, root);
  Cpi cpi = cpi_builder_.Build(q, tree, CpiStrategy::kRefined);
  if (cpi.HasEmptyCandidateSet()) return 0.0;
  std::vector<bool> all(q.NumVertices(), true);
  return TreeCardinality(cpi, root, all);
}

PreparedQuery CflMatcher::Prepare(const Graph& q, const MatchOptions& options) {
  PreparedQuery prepared;
  WallTimer phase_timer;
  // Stats phase laps come from their own timer so they can exclude the
  // bookkeeping between phases (validation, stats copying); every lap is
  // still a disjoint interval of the same wall clock, so the phase-sum
  // <= total identity holds by construction.
  CFL_STATS_ONLY(WallTimer stats_timer; prepared.stats.recorded = true;)

  // --- Decomposition, root selection, BFS tree --------------------------
  std::vector<VertexId> core = TwoCoreVertices(q);
  const std::vector<VertexId>* root_choices = &core;
  std::vector<VertexId> all_vertices;
  if (core.empty()) {
    // Tree query: the core degenerates to the root, chosen among all.
    all_vertices.resize(q.NumVertices());
    for (VertexId v = 0; v < q.NumVertices(); ++v) all_vertices[v] = v;
    root_choices = &all_vertices;
  }
  VertexId root = SelectRoot(q, data_, label_degree_index_, *root_choices);
  prepared.decomposition = DecomposeCfl(q, root);
  prepared.tree = BuildBfsTree(q, root);
  CFL_STATS_ONLY(prepared.stats.decompose_seconds = stats_timer.Lap();)

  // --- CPI ----------------------------------------------------------------
  CpiBuildStats* cpi_stats = nullptr;
  CFL_STATS_ONLY(cpi_stats = &prepared.stats.cpi;)
  prepared.cpi =
      cpi_builder_.Build(q, prepared.tree, options.cpi_strategy, cpi_stats);
  prepared.build_seconds = phase_timer.Lap();
  CFL_STATS_ONLY({
    MatchStats& s = prepared.stats;
    s.cpi_top_down_seconds = s.cpi.top_down_seconds;
    s.cpi_bottom_up_seconds = s.cpi.bottom_up_seconds;
    s.cpi_adjacency_seconds = s.cpi.adjacency_seconds;
    s.cpi_candidate_entries = prepared.cpi.NumCandidateEntries();
    s.cpi_adjacency_entries = prepared.cpi.NumAdjacencyEntries();
    s.cpi_candidates_per_vertex.resize(q.NumVertices());
    for (VertexId u = 0; u < q.NumVertices(); ++u) {
      s.cpi_candidates_per_vertex[u] = prepared.cpi.NumCandidates(u);
    }
  })

  // Debug validation (CFL_VALIDATE=1 / CFL_FORCE_VALIDATE): re-check the
  // structures enumeration will trust blindly; see check/validate.h.
  if (check::DebugValidationEnabled()) {
    ValidationResult r = ValidateDecomposition(q, prepared.decomposition);
    CFL_CHECK(r.ok) << " — decomposition invalid: " << r.error;
    r = ValidateCpi(q, data_, prepared.cpi);
    CFL_CHECK(r.ok) << " — CPI invalid: " << r.error;
  }

  if (prepared.cpi.HasEmptyCandidateSet()) {
    prepared.no_results = true;
    return prepared;
  }

  // --- Matching order ----------------------------------------------------
  CFL_STATS_ONLY(stats_timer.Lap();)  // exclude validation/stats bookkeeping
  prepared.order =
      ComputeMatchingOrder(q, prepared.cpi, prepared.decomposition,
                           options.decomposition, options.ordering);
  prepared.order_seconds = phase_timer.Lap();
  CFL_STATS_ONLY(prepared.stats.order_seconds = stats_timer.Lap();)
  return prepared;
}

MatchResult CflMatcher::Match(const Graph& q, const MatchOptions& options) {
  MatchResult result;
  WallTimer total_timer;

  PreparedQuery prepared = Prepare(q, options);
  const Cpi& cpi = prepared.cpi;
  const MatchingOrder& order = prepared.order;
  result.build_seconds = prepared.build_seconds;
  result.order_seconds = prepared.order_seconds;
  result.index_entries = cpi.SizeInEntries();
  CFL_STATS_ONLY(result.stats = prepared.stats;)

  if (prepared.no_results) {
    result.total_seconds = total_timer.Lap();
    return result;
  }

  // --- Enumeration -------------------------------------------------------
  WallTimer phase_timer;
  Deadline deadline(options.limits.time_limit_seconds);
  EnumeratorState state(q.NumVertices(), data_.NumVertices());
  LeafMatcher leaf_matcher(q, cpi, order.leaves);
  const uint64_t cap = options.limits.max_embeddings;
  const bool compressed = data_.HasMultiplicities();

  EnumerateStatus status;
  if (!options.on_embedding) {
    // Counting mode: leaf completions are counted as Cartesian products of
    // label-class counts — never materialized.
    status = EnumeratePartial(
        data_, cpi, order.steps, state, deadline, [&]() {
          uint64_t count = 1;
          if (compressed) {
            // Unmatched leaf entries are kInvalidVertex and skipped; the
            // leaf count below already accounts for leaf expansions.
            count = ExpansionFactor(data_, state.mapping);
          }
          if (leaf_matcher.HasLeaves()) {
            // Leaf time is sampled (1 in kLeafSampleStride calls), not
            // measured per call: CountEmbeddings is the hottest call site
            // and two clock reads per visit would dominate it.
            CFL_STATS_ONLY(++state.stats.leaf_calls;
                           obs::TimePoint leaf_t0;
                           const bool sample = state.stats.ShouldSampleLeaf();
                           if (sample) leaf_t0 = obs::Now();)
            const uint64_t leaf_count =
                leaf_matcher.CountEmbeddings(data_, state);
            CFL_STATS_ONLY(if (sample) {
              ++state.stats.leaf_sampled_calls;
              state.stats.leaf_sampled_seconds += obs::SecondsSince(leaf_t0);
            } state.stats.leaf_products =
                  SaturatingAdd(state.stats.leaf_products, leaf_count);)
            count = SaturatingMul(count, leaf_count);
          }
          result.embeddings = SaturatingAdd(result.embeddings, count);
          return result.embeddings < cap;
        });
  } else {
    // Enumeration mode: expand leaf assignments and invoke the callback.
    const bool validate_embeddings = check::DebugValidationEnabled();
    status = EnumeratePartial(
        data_, cpi, order.steps, state, deadline, [&]() {
          CFL_STATS_ONLY(
              if (leaf_matcher.HasLeaves()) ++state.stats.leaf_calls;)
          EnumerateStatus leaf_status = leaf_matcher.EnumerateEmbeddings(
              data_, state, deadline, [&]() {
                ++result.embeddings;
                if (validate_embeddings) {
                  ValidationResult r =
                      ValidateEmbedding(q, data_, state.mapping);
                  CFL_CHECK(r.ok) << " — emitted embedding invalid: "
                                  << r.error;
                }
                bool keep = options.on_embedding(state.mapping);
                return keep && result.embeddings < cap;
              });
          if (leaf_status == EnumerateStatus::kTimedOut) {
            result.timed_out = true;
          }
          return leaf_status == EnumerateStatus::kDone;
        });
  }

  if (status == EnumerateStatus::kTimedOut) result.timed_out = true;
  // The two stop flags are independent: reached_limit reports the cap was
  // hit, timed_out reports the deadline expired, and a run that does both in
  // the same instant reports both — every engine (serial, parallel, the
  // baselines) classifies identically, which cfl_difftest asserts.
  result.reached_limit = result.embeddings >= cap;

  result.candidates_tried = state.candidates_tried;
  result.candidates_bound = state.candidates_bound;
  result.enumerate_seconds = phase_timer.Lap();
  CFL_STATS_ONLY({
    MatchStats& s = result.stats;
    s.enumerate_seconds = result.enumerate_seconds;
    s.enumeration.Merge(state.stats);
    s.candidates_tried = result.candidates_tried;
    s.candidates_bound = result.candidates_bound;
    s.embeddings_found = result.embeddings;
    s.threads = 1;
    s.root_candidates = cpi.NumCandidates(order.steps.front().u);
    // Serial run: the one "worker" claims every root it exhausted. Report
    // the full count only for complete runs; a stop/timeout leaves it
    // unknown, and claiming fewer than root_candidates is always sound.
    s.worker_roots_claimed.assign(
        1, status == EnumerateStatus::kDone ? s.root_candidates : 0);
  })
  result.total_seconds = total_timer.Lap();
  return result;
}

}  // namespace cfl
