// Pull-based embedding iteration.
//
// Paper Algorithm 1 remark: "each time when we invoke Core-Match or
// Forest-Match or Leaf-Match, it returns the next embedding; that is, to
// save memory space, only one embedding is generated each time."
// `EmbeddingIterator` exposes exactly that protocol as a public API: the
// whole CFL pipeline (decomposition, CPI, ordering) runs once up front,
// after which each Next() resumes the backtracking search just far enough
// to produce one more embedding. Nothing is ever materialized beyond the
// O(|V(q)|) search state.
//
//   cfl::EmbeddingIterator it(data, query, limits);
//   cfl::Embedding m;
//   while (it.Next(&m)) Use(m);
//   if (it.timed_out()) ...   // deadline expired mid-search
//
// The iterator honors MatchLimits like every engine: Next() returns false
// once `max_embeddings` have been produced (reached_limit()) or when the
// deadline expires inside the resumed search (timed_out()) — without this a
// streamed query could pin a server worker forever. It can also be armed
// with an already-prepared (possibly cached and shared) PreparedQuery, so a
// resident server streams results without re-running the prepare pipeline.
//
// The iterator is single-pass and move-only. For bulk counting prefer
// CflMatcher::Match (it counts leaf Cartesian products without expanding
// them); the iterator necessarily expands every assignment.

#ifndef CFL_MATCH_ITERATOR_H_
#define CFL_MATCH_ITERATOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "cpi/cpi.h"
#include "graph/graph.h"
#include "kernels/kernels.h"
#include "match/embedding.h"
#include "match/enumerator.h"
#include "order/matching_order.h"

namespace cfl {

struct PreparedQuery;

// Resumable backtracking over a step sequence (core + forest): each
// Next() leaves the steps' bindings in `state` and returns true, or returns
// false (with clean state) when the space is exhausted or the deadline
// expired (distinguished by timed_out()).
class StepEnumerator {
 public:
  // All referees must outlive the enumerator. `state` is shared with any
  // nested enumerators (the leaf stage); `deadline` is shared with them too
  // so the coarse-tick amortization covers the whole pipeline.
  StepEnumerator(const Graph& data, const Cpi& cpi,
                 const std::vector<MatchStep>& steps, EnumeratorState* state,
                 Deadline* deadline = nullptr);

  bool Next();

  // Releases any held bindings (called automatically on exhaustion).
  void Abort();

  // True once Next() returned false because the deadline expired rather
  // than because the space was exhausted.
  bool timed_out() const { return timed_out_; }

 private:
  // Re-resolves the backward-edge plan of `depth` against the current
  // mapping; called on every descent (and stays valid across Next()
  // resumes — the shallower bindings a plan depends on are only ever
  // changed by descending through this depth again).
  void RebuildPlan(size_t depth);

  const Graph& data_;
  const Cpi& cpi_;
  const std::vector<MatchStep>& steps_;
  EnumeratorState* state_;
  Deadline* deadline_;
  std::vector<uint32_t> cursor_;
  // Per-depth backward-edge plans (kernels/kernels.h), same rebuild-on-
  // descent discipline as EnumeratePartial.
  std::vector<kernels::BackwardPlan> plans_;
  // Number of currently-bound steps; search resumes from here.
  size_t bound_ = 0;
  bool exhausted_ = false;
  bool timed_out_ = false;
};

// Resumable backtracking over the leaf vertices, candidates drawn from the
// CPI adjacency under each leaf's (already bound) parent.
class LeafEnumerator {
 public:
  LeafEnumerator(const Graph& data, const Cpi& cpi,
                 const std::vector<VertexId>& leaves, EnumeratorState* state,
                 Deadline* deadline = nullptr);

  // Re-arms the enumerator for the current core/forest binding.
  void Reset();

  bool Next();

  void Abort();

  bool timed_out() const { return timed_out_; }

 private:
  const Graph& data_;
  const Cpi& cpi_;
  const std::vector<VertexId>& leaves_;
  EnumeratorState* state_;
  Deadline* deadline_;
  std::vector<uint32_t> cursor_;
  size_t bound_ = 0;
  bool exhausted_ = false;
  bool timed_out_ = false;
};

// The full pipeline as a single-pass iterator.
class EmbeddingIterator {
 public:
  // Runs decomposition, root selection, CPI construction, and ordering for
  // `query` over `data`; both must outlive the iterator.
  EmbeddingIterator(const Graph& data, const Graph& query,
                    const MatchLimits& limits = {});

  // Streams from an already-prepared plan (e.g. a plan-cache entry): no
  // prepare work happens here. The shared_ptr keeps the plan alive for the
  // iterator's lifetime, so a cache eviction cannot pull the CPI out from
  // under a running stream. `prepared` must stem from the same data graph.
  EmbeddingIterator(const Graph& data,
                    std::shared_ptr<const PreparedQuery> prepared,
                    const MatchLimits& limits = {});

  ~EmbeddingIterator();

  EmbeddingIterator(EmbeddingIterator&&) noexcept;
  EmbeddingIterator& operator=(EmbeddingIterator&&) noexcept;

  // Copies the next embedding into *out; false when exhausted, capped, or
  // timed out (see the accessors below).
  bool Next(Embedding* out);

  // Embeddings produced so far.
  uint64_t produced() const { return produced_; }

  // The deadline expired during a Next(); the stream is over (same
  // semantics as MatchResult::timed_out — independent of reached_limit).
  bool timed_out() const;

  // max_embeddings have been produced (same semantics as
  // MatchResult::reached_limit: true iff the cap was hit).
  bool reached_limit() const { return produced_ >= cap_; }

 private:
  struct Pipeline;  // owns/shares plan + state + enumerators
  std::unique_ptr<Pipeline> p_;
  uint64_t produced_ = 0;
  uint64_t cap_ = kNoLimit;
  bool exhausted_ = false;
};

}  // namespace cfl

#endif  // CFL_MATCH_ITERATOR_H_
