// Pull-based embedding iteration.
//
// Paper Algorithm 1 remark: "each time when we invoke Core-Match or
// Forest-Match or Leaf-Match, it returns the next embedding; that is, to
// save memory space, only one embedding is generated each time."
// `EmbeddingIterator` exposes exactly that protocol as a public API: the
// whole CFL pipeline (decomposition, CPI, ordering) runs once up front,
// after which each Next() resumes the backtracking search just far enough
// to produce one more embedding. Nothing is ever materialized beyond the
// O(|V(q)|) search state.
//
//   cfl::EmbeddingIterator it(data, query);
//   cfl::Embedding m;
//   while (it.Next(&m)) Use(m);
//
// The iterator is single-pass and move-only. For bulk counting prefer
// CflMatcher::Match (it counts leaf Cartesian products without expanding
// them); the iterator necessarily expands every assignment.

#ifndef CFL_MATCH_ITERATOR_H_
#define CFL_MATCH_ITERATOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "cpi/cpi.h"
#include "graph/graph.h"
#include "match/embedding.h"
#include "match/enumerator.h"
#include "order/matching_order.h"

namespace cfl {

// Resumable backtracking over a step sequence (core + forest): each
// Next() leaves the steps' bindings in `state` and returns true, or returns
// false (with clean state) when the space is exhausted.
class StepEnumerator {
 public:
  // All referees must outlive the enumerator. `state` is shared with any
  // nested enumerators (the leaf stage).
  StepEnumerator(const Graph& data, const Cpi& cpi,
                 const std::vector<MatchStep>& steps, EnumeratorState* state);

  bool Next();

  // Releases any held bindings (called automatically on exhaustion).
  void Abort();

 private:
  const Graph& data_;
  const Cpi& cpi_;
  const std::vector<MatchStep>& steps_;
  EnumeratorState* state_;
  std::vector<uint32_t> cursor_;
  // Number of currently-bound steps; search resumes from here.
  size_t bound_ = 0;
  bool exhausted_ = false;
};

// Resumable backtracking over the leaf vertices, candidates drawn from the
// CPI adjacency under each leaf's (already bound) parent.
class LeafEnumerator {
 public:
  LeafEnumerator(const Graph& data, const Cpi& cpi,
                 const std::vector<VertexId>& leaves, EnumeratorState* state);

  // Re-arms the enumerator for the current core/forest binding.
  void Reset();

  bool Next();

  void Abort();

 private:
  const Graph& data_;
  const Cpi& cpi_;
  const std::vector<VertexId>& leaves_;
  EnumeratorState* state_;
  std::vector<uint32_t> cursor_;
  size_t bound_ = 0;
  bool exhausted_ = false;
};

// The full pipeline as a single-pass iterator.
class EmbeddingIterator {
 public:
  // Runs decomposition, root selection, CPI construction, and ordering for
  // `query` over `data`; both must outlive the iterator.
  EmbeddingIterator(const Graph& data, const Graph& query);
  ~EmbeddingIterator();

  EmbeddingIterator(EmbeddingIterator&&) noexcept;
  EmbeddingIterator& operator=(EmbeddingIterator&&) noexcept;

  // Copies the next embedding into *out; false when exhausted.
  bool Next(Embedding* out);

  // Embeddings produced so far.
  uint64_t produced() const { return produced_; }

 private:
  struct Pipeline;  // owns cpi/order/state/enumerators
  std::unique_ptr<Pipeline> p_;
  uint64_t produced_ = 0;
  bool exhausted_ = false;
};

}  // namespace cfl

#endif  // CFL_MATCH_ITERATOR_H_
