// Common types for subgraph-matching engines: embeddings, enumeration
// limits, deadlines, and result statistics.

#ifndef CFL_MATCH_EMBEDDING_H_
#define CFL_MATCH_EMBEDDING_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/graph.h"
#include "obs/clock.h"
#include "obs/stats.h"

namespace cfl {

// An embedding maps query vertex u to Embedding[u] in the data graph.
// Entries are kInvalidVertex for unmatched vertices of partial embeddings.
using Embedding = std::vector<VertexId>;

// Invoked per enumerated embedding; return false to stop enumeration.
using EmbeddingCallback = std::function<bool(const Embedding&)>;

inline constexpr uint64_t kNoLimit = static_cast<uint64_t>(-1);

// Enumeration limits shared by every engine. The paper caps #embeddings
// (default 1e5) and uses a wall-clock limit, reporting "INF" on timeout.
struct MatchLimits {
  uint64_t max_embeddings = kNoLimit;
  double time_limit_seconds = 0.0;  // <= 0 disables the deadline
};

// Cheap cooperative deadline: engines call Expired() every few thousand
// search steps.
class Deadline {
 public:
  // seconds <= 0 constructs a never-expiring deadline.
  explicit Deadline(double seconds) {
    if (seconds > 0.0) {
      expires_at_ = obs::AfterSeconds(obs::Now(), seconds);
      armed_ = true;
    }
  }

  bool Expired() const { return armed_ && obs::Now() >= expires_at_; }

  // Amortizes the clock read: returns true at most once per kStride calls
  // plus whenever already known-expired.
  bool ExpiredCoarse() {
    if (!armed_) return false;
    if (expired_) return true;
    if (++ticks_ % kStride != 0) return false;
    expired_ = Expired();
    return expired_;
  }

 private:
  static constexpr uint32_t kStride = 4096;
  obs::TimePoint expires_at_{};
  bool armed_ = false;
  bool expired_ = false;
  uint32_t ticks_ = 0;
};

// Per-query outcome and timing breakdown. The paper's "query vertex
// ordering time" corresponds to build_seconds + order_seconds (matching
// order *and* the auxiliary structures needed to compute it); its
// "embedding enumeration time" is enumerate_seconds.
struct MatchResult {
  uint64_t embeddings = 0;
  bool reached_limit = false;  // stopped at max_embeddings
  bool timed_out = false;      // deadline expired; counts are partial

  double build_seconds = 0.0;      // auxiliary structure (CPI / CR / ...)
  double order_seconds = 0.0;      // matching-order computation
  double enumerate_seconds = 0.0;  // embedding enumeration
  double total_seconds = 0.0;

  uint64_t index_entries = 0;  // auxiliary structure size (Figure 16(d))

  // Search-effort counters (CFL engines): candidate bindings attempted and
  // accepted during backtracking — the observable face of the cost model's
  // sum over d_i^j. Useful for ablation analysis; zero for engines that do
  // not report them.
  uint64_t candidates_tried = 0;
  uint64_t candidates_bound = 0;

  // Detailed execution stats (src/obs/stats.h). Fields stay zero when the
  // engine does not record them or the build has CFL_STATS=OFF; check
  // stats.recorded before interpreting.
  MatchStats stats;

  double OrderingSeconds() const { return build_seconds + order_seconds; }
};

// Saturating helpers for embedding arithmetic (counts can overflow when
// leaf-match multiplies class counts on dense graphs).
inline uint64_t SaturatingAdd(uint64_t a, uint64_t b) {
  uint64_t s = a + b;
  return s < a ? kNoLimit : s;
}
inline uint64_t SaturatingMul(uint64_t a, uint64_t b) {
  if (a == 0 || b == 0) return 0;
  if (a > kNoLimit / b) return kNoLimit;
  return a * b;
}

// Number of distinct expanded embeddings one embedding into a *compressed*
// data graph stands for: a hypervertex v hosting j query vertices offers
// P(multiplicity(v), j) ordered member assignments. Returns 1 on plain
// graphs. Unmatched (kInvalidVertex) entries are skipped.
uint64_t ExpansionFactor(const Graph& data, const Embedding& mapping);

}  // namespace cfl

#endif  // CFL_MATCH_EMBEDDING_H_
