#include "match/engine.h"

#include <utility>

#include "match/cfl_match.h"

namespace cfl {

namespace {

class CflEngine : public SubgraphEngine {
 public:
  CflEngine(const Graph& data, std::string name, DecompositionMode mode,
            CpiStrategy strategy, PathOrderingStrategy ordering)
      : name_(std::move(name)),
        mode_(mode),
        strategy_(strategy),
        ordering_(ordering),
        matcher_(data) {}

  std::string_view name() const override { return name_; }

  MatchResult Run(const Graph& query, const MatchLimits& limits) override {
    MatchOptions options;
    options.limits = limits;
    options.decomposition = mode_;
    options.cpi_strategy = strategy_;
    options.ordering = ordering_;
    return matcher_.Match(query, options);
  }

 private:
  std::string name_;
  DecompositionMode mode_;
  CpiStrategy strategy_;
  PathOrderingStrategy ordering_;
  CflMatcher matcher_;
};

}  // namespace

std::unique_ptr<SubgraphEngine> MakeCflEngine(const Graph& data,
                                              std::string name,
                                              DecompositionMode mode,
                                              CpiStrategy strategy,
                                              PathOrderingStrategy ordering) {
  return std::make_unique<CflEngine>(data, std::move(name), mode, strategy,
                                     ordering);
}

std::unique_ptr<SubgraphEngine> MakeCflMatch(const Graph& data) {
  return MakeCflEngine(data, "CFL-Match", DecompositionMode::kCfl,
                       CpiStrategy::kRefined);
}

std::unique_ptr<SubgraphEngine> MakeCfMatch(const Graph& data) {
  return MakeCflEngine(data, "CF-Match", DecompositionMode::kCoreForest,
                       CpiStrategy::kRefined);
}

std::unique_ptr<SubgraphEngine> MakeMatchNoDecomp(const Graph& data) {
  return MakeCflEngine(data, "Match", DecompositionMode::kNone,
                       CpiStrategy::kRefined);
}

std::unique_ptr<SubgraphEngine> MakeCflMatchTd(const Graph& data) {
  return MakeCflEngine(data, "CFL-Match-TD", DecompositionMode::kCfl,
                       CpiStrategy::kTopDown);
}

std::unique_ptr<SubgraphEngine> MakeCflMatchNaive(const Graph& data) {
  return MakeCflEngine(data, "CFL-Match-Naive", DecompositionMode::kCfl,
                       CpiStrategy::kNaive);
}

std::unique_ptr<SubgraphEngine> MakeCflMatchBfsOrder(const Graph& data) {
  return MakeCflEngine(data, "CFL-Match-BFSOrder", DecompositionMode::kCfl,
                       CpiStrategy::kRefined,
                       PathOrderingStrategy::kBfsNatural);
}

}  // namespace cfl
