// Root-to-leaf path enumeration over (restrictions of) the query BFS tree.
//
// The matching-order selection (paper Section 4.2.1) operates on the set of
// root-to-leaf paths of the BFS tree. Core-match uses the tree restricted to
// the core-set; forest-match uses each forest tree restricted to the
// forest-set plus its connection-vertex root.

#ifndef CFL_ORDER_PATH_ENUM_H_
#define CFL_ORDER_PATH_ENUM_H_

#include <vector>

#include "decomp/bfs_tree.h"
#include "graph/graph.h"

namespace cfl {

// All root-to-leaf paths of the BFS tree restricted to vertices with
// include[v] == true, starting from `start` (which must be included and
// whose included ancestors, if any, are not considered). A vertex is a leaf
// of the restriction if it has no included children. If `start` has no
// included children the single path {start} is returned.
std::vector<std::vector<VertexId>> RootToLeafPaths(
    const BfsTree& tree, VertexId start, const std::vector<bool>& include);

}  // namespace cfl

#endif  // CFL_ORDER_PATH_ENUM_H_
