// QuickSI's QI-sequence ordering (Shang et al., PVLDB 2008; paper [15]).
//
// QuickSI orders query vertices along a spanning tree chosen to visit
// infrequent structures first: edge weights are the data-graph frequencies
// of the edge's label pair, a minimum spanning tree is grown Prim-style
// starting from the lightest edge, and the visit order of the tree is the
// matching order. Non-tree edges are checked as soon as both endpoints are
// matched. This module computes the order; the matching itself lives in
// baseline/quicksi.h.

#ifndef CFL_ORDER_QUICKSI_ORDER_H_
#define CFL_ORDER_QUICKSI_ORDER_H_

#include <vector>

#include "graph/graph.h"
#include "graph/graph_stats.h"

namespace cfl {

struct QuickSiStep {
  VertexId u = kInvalidVertex;
  VertexId parent = kInvalidVertex;       // spanning-tree parent
  std::vector<VertexId> backward;         // earlier neighbors besides parent
};

// Computes the QI-sequence of `q` against the data graph summarized by
// `freq` (label-pair edge frequencies) and `vertex_freq` (label
// frequencies, used to pick the starting vertex).
std::vector<QuickSiStep> ComputeQiSequence(const Graph& q,
                                           const Graph& data,
                                           const LabelPairFrequency& freq);

}  // namespace cfl

#endif  // CFL_ORDER_QUICKSI_ORDER_H_
