// The matching-cost model of paper Section 2.1 (adopted from QuickSI [15]).
//
// For a backtracking algorithm following matching order (u_1, ..., u_n) with
// spanning-tree parents u_i.p:
//
//   T_iso = B_1 + sum_{i=2..n} sum_{j=1..B_{i-1}} d_i^j * (r_i + 1)
//
// where B_i is the *search breadth* — the number of embeddings in G of the
// subgraph of q induced by {u_1..u_i} — d_i^j counts the neighbors of
// M_j(u_i.p) sharing u_i's label, and r_i is the number of non-tree edges
// from u_i to earlier vertices.
//
// This module computes T_iso exactly by level-wise expansion of all partial
// embeddings. It exists for analysis, tests (the paper's Figure 1 example:
// 200302 vs 2302), and the ordering-ablation bench — production matching
// never materializes breadths like this.

#ifndef CFL_ORDER_COST_MODEL_H_
#define CFL_ORDER_COST_MODEL_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "order/matching_order.h"

namespace cfl {

struct CostModelResult {
  uint64_t total_cost = 0;          // T_iso
  std::vector<uint64_t> breadths;   // B_1 .. B_n
  bool truncated = false;           // hit the breadth cap; cost is partial
};

// Evaluates T_iso for `steps` (a connected matching order with per-step
// parents and backward non-tree edges, as produced by ComputeMatchingOrder
// or built by StepsFromOrder). Expansion stops once a level would exceed
// `max_breadth` partial embeddings.
CostModelResult ComputeMatchingCost(const Graph& q, const Graph& data,
                                    const std::vector<MatchStep>& steps,
                                    uint64_t max_breadth = 1'000'000);

// Builds MatchSteps from an explicit vertex order and spanning-tree parent
// assignment: parents[u] must precede u in `order` (kInvalidVertex for the
// first vertex); every other earlier query neighbor becomes a backward
// non-tree edge.
std::vector<MatchStep> StepsFromOrder(const Graph& q,
                                      const std::vector<VertexId>& order,
                                      const std::vector<VertexId>& parents);

}  // namespace cfl

#endif  // CFL_ORDER_COST_MODEL_H_
