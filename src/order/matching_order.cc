#include "order/matching_order.h"

#include <algorithm>

#include "check/check.h"
#include "order/cardinality.h"
#include "order/path_enum.h"
#include "order/path_order.h"

#include <unordered_set>

namespace cfl {

namespace {

// Appends MatchSteps for `vertices` (in order), deriving each step's
// backward edges from the query vertices already placed.
void AppendSteps(const Graph& q, const BfsTree& tree,
                 const std::vector<VertexId>& vertices,
                 std::vector<bool>* placed, MatchingOrder* order) {
  for (VertexId u : vertices) {
    MatchStep step;
    step.u = u;
    step.parent = order->steps.empty() ? kInvalidVertex : tree.parent[u];
    for (VertexId w : q.Neighbors(u)) {
      if ((*placed)[w] && w != step.parent) step.backward.push_back(w);
    }
    std::sort(step.backward.begin(), step.backward.end());
    (*placed)[u] = true;
    order->steps.push_back(std::move(step));
  }
}

// Ablation ordering: concatenate paths in discovery order, skipping
// already-sequenced prefixes. Seeded vertices are treated as placed.
std::vector<VertexId> OrderPathsNaturally(
    const std::vector<std::vector<VertexId>>& paths,
    const std::vector<VertexId>& seed_sequence) {
  std::vector<VertexId> out;
  std::unordered_set<VertexId> in_seq(seed_sequence.begin(),
                                      seed_sequence.end());
  for (const std::vector<VertexId>& path : paths) {
    for (VertexId v : path) {
      if (in_seq.insert(v).second) out.push_back(v);
    }
  }
  return out;
}

std::vector<VertexId> OrderWith(
    PathOrderingStrategy strategy, const Cpi& cpi,
    const std::vector<std::vector<VertexId>>& paths,
    const std::vector<NonTreeEdge>& non_tree_edges,
    const std::vector<VertexId>& seed_sequence = {}) {
  if (strategy == PathOrderingStrategy::kBfsNatural) {
    return OrderPathsNaturally(paths, seed_sequence);
  }
  return OrderPaths(cpi, paths, non_tree_edges, seed_sequence);
}

}  // namespace

MatchingOrder ComputeMatchingOrder(const Graph& q, const Cpi& cpi,
                                   const CflDecomposition& decomposition,
                                   DecompositionMode mode,
                                   PathOrderingStrategy strategy) {
  const BfsTree& tree = cpi.tree();
  const uint32_t n = q.NumVertices();
  MatchingOrder order;
  std::vector<bool> placed(n, false);

  if (mode == DecompositionMode::kNone) {
    // Match variant: one Algorithm-2 ordering over the entire BFS tree.
    std::vector<bool> all(n, true);
    std::vector<std::vector<VertexId>> paths =
        RootToLeafPaths(tree, tree.root, all);
    std::vector<VertexId> seq =
        OrderWith(strategy, cpi, paths, tree.non_tree_edges);
    AppendSteps(q, tree, seq, &placed, &order);
    order.num_core_steps = static_cast<uint32_t>(order.steps.size());
    return order;
  }

  // --- Core-match order -------------------------------------------------
  std::vector<bool> in_core(n, false);
  for (VertexId v : decomposition.core) in_core[v] = true;
  CFL_DCHECK(in_core[tree.root])
      << " root " << tree.root << " must be a core vertex (A.6 selects the"
      << " root from the core-set)";
  {
    std::vector<std::vector<VertexId>> paths =
        RootToLeafPaths(tree, tree.root, in_core);
    std::vector<VertexId> seq =
        OrderWith(strategy, cpi, paths, tree.non_tree_edges);
    AppendSteps(q, tree, seq, &placed, &order);
  }
  order.num_core_steps = static_cast<uint32_t>(order.steps.size());

  // --- Forest-match order -------------------------------------------------
  // Forest membership; CF-Match folds the leaves into the forest.
  std::vector<bool> in_forest(n, false);
  for (VertexId v : decomposition.forest) in_forest[v] = true;
  if (mode == DecompositionMode::kCoreForest) {
    for (VertexId v : decomposition.leaf) in_forest[v] = true;
  }

  // One connected tree per connection vertex; order trees by increasing CPI
  // embedding count (Section 4.3).
  struct ForestTree {
    VertexId connection;
    double cardinality;
  };
  std::vector<ForestTree> trees;
  for (VertexId c : decomposition.connections) {
    bool has_forest_child = false;
    for (VertexId w : tree.children[c]) {
      if (in_forest[w]) {
        has_forest_child = true;
        break;
      }
    }
    if (!has_forest_child) continue;
    std::vector<bool> include = in_forest;
    include[c] = true;
    trees.push_back({c, TreeCardinality(cpi, c, include)});
  }
  std::sort(trees.begin(), trees.end(),
            [](const ForestTree& a, const ForestTree& b) {
              return a.cardinality < b.cardinality ||
                     (a.cardinality == b.cardinality &&
                      a.connection < b.connection);
            });

  for (const ForestTree& ft : trees) {
    std::vector<bool> include = in_forest;
    include[ft.connection] = true;
    std::vector<std::vector<VertexId>> paths =
        RootToLeafPaths(tree, ft.connection, include);
    std::vector<VertexId> seq = OrderWith(strategy, cpi, paths,
                                          tree.non_tree_edges,
                                          {ft.connection});
    AppendSteps(q, tree, seq, &placed, &order);
  }

  // --- Leaf-match -----------------------------------------------------
  if (mode == DecompositionMode::kCfl) {
    order.leaves = decomposition.leaf;
  }
  return order;
}

}  // namespace cfl
