#include "order/quicksi_order.h"

#include <algorithm>
#include <limits>

namespace cfl {

std::vector<QuickSiStep> ComputeQiSequence(const Graph& q, const Graph& data,
                                           const LabelPairFrequency& freq) {
  const uint32_t n = q.NumVertices();
  std::vector<QuickSiStep> seq;
  seq.reserve(n);
  std::vector<bool> placed(n, false);

  // Weight of a query edge: frequency of its label pair among data edges.
  auto edge_weight = [&](VertexId a, VertexId b) {
    return freq.Frequency(q.label(a), q.label(b));
  };

  // Start from the endpoint of the globally lightest edge whose own label is
  // rarer in the data graph (infrequent-first).
  VertexId start = 0;
  {
    uint64_t best_w = std::numeric_limits<uint64_t>::max();
    VertexId best_a = 0, best_b = 0;
    for (VertexId a = 0; a < n; ++a) {
      for (VertexId b : q.Neighbors(a)) {
        if (b < a) continue;
        uint64_t w = edge_weight(a, b);
        // Ties break toward the lexicographically smallest (a, b) so the
        // choice is independent of the adjacency layout's neighbor order.
        if (w < best_w || (w == best_w && a == best_a && b < best_b)) {
          best_w = w;
          best_a = a;
          best_b = b;
        }
      }
    }
    start = data.LabelFrequency(q.label(best_a)) <=
                    data.LabelFrequency(q.label(best_b))
                ? best_a
                : best_b;
  }

  // Prim-style growth: repeatedly take the lightest edge from the placed set
  // to an unplaced vertex.
  {
    QuickSiStep step;
    step.u = start;
    placed[start] = true;
    seq.push_back(std::move(step));
  }
  while (seq.size() < n) {
    uint64_t best_w = std::numeric_limits<uint64_t>::max();
    VertexId best_u = kInvalidVertex, best_p = kInvalidVertex;
    for (const QuickSiStep& s : seq) {
      for (VertexId w : q.Neighbors(s.u)) {
        if (placed[w]) continue;
        uint64_t wt = edge_weight(s.u, w);
        if (wt < best_w || (wt == best_w && w < best_u)) {
          best_w = wt;
          best_u = w;
          best_p = s.u;
        }
      }
    }
    QuickSiStep step;
    step.u = best_u;
    step.parent = best_p;
    for (VertexId w : q.Neighbors(best_u)) {
      if (placed[w] && w != best_p) step.backward.push_back(w);
    }
    std::sort(step.backward.begin(), step.backward.end());
    placed[best_u] = true;
    seq.push_back(std::move(step));
  }
  return seq;
}

}  // namespace cfl
