// Embedding-count estimation over the CPI (paper Section 4.2.1,
// "Estimate c(pi)").
//
// For a root-to-leaf query path pi, c(pi) is the number of embeddings of pi
// present in the CPI, computed exactly by bottom-up dynamic programming over
// the CPI adjacency lists: c_u(v) = sum over v' in N_u'^u(v) of c_u'(v'),
// with c = 1 at the path's last vertex. The same DP generalizes to whole
// trees (used to order the connected trees of the forest-structure in
// Section 4.3) via a product over children.
//
// Counts are doubles: they are only compared/divided for ordering, and real
// counts can overflow 64-bit integers on dense graphs.

#ifndef CFL_ORDER_CARDINALITY_H_
#define CFL_ORDER_CARDINALITY_H_

#include <vector>

#include "cpi/cpi.h"
#include "graph/graph.h"

namespace cfl {

// Per-suffix path cardinalities for `path` (a root-to-leaf path in the CPI's
// BFS tree, path[i+1] a tree child of path[i]). Returns `suffix` with
// suffix[i] = c(pi^{path[i]}), the number of CPI embeddings of the suffix of
// the path starting at path[i]; suffix[0] == c(pi).
std::vector<double> PathSuffixCardinalities(const Cpi& cpi,
                                            const std::vector<VertexId>& path);

// Number of CPI embeddings of the BFS subtree rooted at `root` restricted to
// include[]-vertices (root must be included). Counts tree embeddings only —
// non-tree edges are ignored, as in the paper's cost model.
double TreeCardinality(const Cpi& cpi, VertexId root,
                       const std::vector<bool>& include);

}  // namespace cfl

#endif  // CFL_ORDER_CARDINALITY_H_
