#include "order/path_enum.h"

#include "check/check.h"

namespace cfl {

std::vector<std::vector<VertexId>> RootToLeafPaths(
    const BfsTree& tree, VertexId start, const std::vector<bool>& include) {
  CFL_DCHECK(include[start])
      << " path enumeration started at excluded vertex " << start;
  std::vector<std::vector<VertexId>> paths;
  // Iterative DFS carrying the current path.
  std::vector<VertexId> path;
  // Stack of (vertex, depth in path).
  std::vector<std::pair<VertexId, uint32_t>> stack;
  stack.emplace_back(start, 0);
  while (!stack.empty()) {
    auto [u, depth] = stack.back();
    stack.pop_back();
    path.resize(depth);
    path.push_back(u);
    bool has_child = false;
    // Push children in reverse so paths come out in ascending child order.
    const std::vector<VertexId>& kids = tree.children[u];
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
      if (include[*it]) {
        stack.emplace_back(*it, depth + 1);
        has_child = true;
      }
    }
    if (!has_child) paths.push_back(path);
  }
  return paths;
}

}  // namespace cfl
