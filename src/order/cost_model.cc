#include "order/cost_model.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

namespace cfl {

std::vector<MatchStep> StepsFromOrder(const Graph& q,
                                      const std::vector<VertexId>& order,
                                      const std::vector<VertexId>& parents) {
  std::vector<MatchStep> steps;
  steps.reserve(order.size());
  std::vector<bool> placed(q.NumVertices(), false);
  for (uint32_t i = 0; i < order.size(); ++i) {
    VertexId u = order[i];
    MatchStep step;
    step.u = u;
    step.parent = parents[u];
    if (i == 0) {
      if (step.parent != kInvalidVertex) {
        throw std::invalid_argument("StepsFromOrder: first vertex has parent");
      }
    } else if (step.parent == kInvalidVertex || !placed[step.parent]) {
      throw std::invalid_argument(
          "StepsFromOrder: parent not placed before child");
    }
    for (VertexId w : q.Neighbors(u)) {
      if (placed[w] && w != step.parent) step.backward.push_back(w);
    }
    placed[u] = true;
    steps.push_back(std::move(step));
  }
  return steps;
}

CostModelResult ComputeMatchingCost(const Graph& q, const Graph& data,
                                    const std::vector<MatchStep>& steps,
                                    uint64_t max_breadth) {
  CostModelResult result;
  if (steps.empty()) return result;

  const uint32_t n = static_cast<uint32_t>(steps.size());
  // Partial embeddings of the first i steps, stored as flat rows of length i.
  std::vector<std::vector<VertexId>> current;

  // B_1: candidates of the first vertex are all label matches (the cost
  // model charges B_1 itself, not a scan of V(G)).
  for (VertexId v : data.VerticesWithLabel(q.label(steps[0].u))) {
    current.push_back({v});
  }
  result.breadths.push_back(current.size());
  result.total_cost = current.size();

  // Position of each step's query vertex within the embedding rows.
  std::unordered_map<VertexId, uint32_t> position;
  position[steps[0].u] = 0;

  for (uint32_t i = 1; i < n; ++i) {
    const MatchStep& step = steps[i];
    const Label want = q.label(step.u);
    const uint32_t parent_pos = position.at(step.parent);
    const uint64_t extension_charge = step.backward.size() + 1;  // r_i + 1

    std::vector<std::vector<VertexId>> next;
    for (const std::vector<VertexId>& m : current) {
      VertexId parent_v = m[parent_pos];
      for (VertexId w : data.Neighbors(parent_v)) {
        if (data.label(w) != want) continue;
        // d_i^j counts this candidate; each is charged (r_i + 1).
        result.total_cost += extension_charge;
        // Extend if injective and all backward edges hold.
        if (std::find(m.begin(), m.end(), w) != m.end()) continue;
        bool ok = true;
        for (VertexId b : step.backward) {
          if (!data.HasEdge(m[position.at(b)], w)) {
            ok = false;
            break;
          }
        }
        if (!ok) continue;
        if (next.size() >= max_breadth) {
          result.truncated = true;
          continue;
        }
        std::vector<VertexId> extended = m;
        extended.push_back(w);
        next.push_back(std::move(extended));
      }
    }
    position[step.u] = i;
    current = std::move(next);
    result.breadths.push_back(current.size());
    if (result.truncated) break;
  }
  return result;
}

}  // namespace cfl
