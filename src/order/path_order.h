// Greedy path ordering (paper Algorithm 2, "Matching-Order").
//
// Given the root-to-leaf paths of (a restriction of) the query BFS tree and
// the CPI, produce the matching order of the covered query vertices:
//   * the first path minimizes c(pi) / |NT(pi)| — its CPI embedding count
//     discounted by the number of non-tree edges touching it (more non-tree
//     edges means more pruning power early);
//   * each subsequent path minimizes c(pi^u) / |u.C| where u = pi.p is the
//     path's connection vertex to the already-ordered sequence — i.e., the
//     expected number of extensions per existing partial embedding.

#ifndef CFL_ORDER_PATH_ORDER_H_
#define CFL_ORDER_PATH_ORDER_H_

#include <vector>

#include "cpi/cpi.h"
#include "decomp/bfs_tree.h"
#include "graph/graph.h"

namespace cfl {

// Orders the vertices covered by `paths` (all sharing their first vertex).
// If `seed_sequence` is non-empty, those vertices are treated as already
// matched (used when ordering a forest tree whose connection vertex was
// matched by core-match); they are not re-emitted in the result.
std::vector<VertexId> OrderPaths(
    const Cpi& cpi, const std::vector<std::vector<VertexId>>& paths,
    const std::vector<NonTreeEdge>& non_tree_edges,
    const std::vector<VertexId>& seed_sequence = {});

}  // namespace cfl

#endif  // CFL_ORDER_PATH_ORDER_H_
