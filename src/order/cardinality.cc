#include "order/cardinality.h"

#include <functional>

#include "check/check.h"

namespace cfl {

std::vector<double> PathSuffixCardinalities(const Cpi& cpi,
                                            const std::vector<VertexId>& path) {
  CFL_DCHECK(!path.empty()) << " cardinality of an empty path is undefined";
  const size_t k = path.size();
  std::vector<double> suffix(k, 0.0);

  // counts[pos] = number of suffix embeddings mapping path[i] to its
  // candidate at `pos`.
  std::vector<double> counts(cpi.Candidates(path[k - 1]).size(), 1.0);
  suffix[k - 1] = static_cast<double>(counts.size());

  for (size_t i = k - 1; i-- > 0;) {
    const VertexId u = path[i];
    const VertexId child = path[i + 1];
    std::vector<double> next(cpi.Candidates(u).size(), 0.0);
    double total = 0.0;
    for (uint32_t p = 0; p < next.size(); ++p) {
      double c = 0.0;
      for (uint32_t cp : cpi.AdjacentPositions(child, p)) c += counts[cp];
      next[p] = c;
      total += c;
    }
    counts = std::move(next);
    suffix[i] = total;
  }
  return suffix;
}

double TreeCardinality(const Cpi& cpi, VertexId root,
                       const std::vector<bool>& include) {
  const BfsTree& tree = cpi.tree();

  // Post-order DP: per candidate of u, the number of embeddings of the
  // included subtree under u with u mapped there.
  std::function<std::vector<double>(VertexId)> solve =
      [&](VertexId u) -> std::vector<double> {
    std::vector<double> counts(cpi.Candidates(u).size(), 1.0);
    for (VertexId child : tree.children[u]) {
      if (!include[child]) continue;
      std::vector<double> child_counts = solve(child);
      for (uint32_t p = 0; p < counts.size(); ++p) {
        double c = 0.0;
        for (uint32_t cp : cpi.AdjacentPositions(child, p)) {
          c += child_counts[cp];
        }
        counts[p] *= c;
      }
    }
    return counts;
  };

  std::vector<double> root_counts = solve(root);
  double total = 0.0;
  for (double c : root_counts) total += c;
  return total;
}

}  // namespace cfl
