// Assembly of the complete matching order for the backtracking enumerator.
//
// Combines the CFL decomposition's macro order (V_C, V_T, V_I) with the
// greedy path ordering of Algorithm 2:
//   * core steps: paths of the BFS tree restricted to the core-set, ordered
//     by Algorithm 2 using all non-tree edges (Section 4.2.1);
//   * forest steps: the connected trees of the forest-structure ordered by
//     increasing CPI embedding count, each tree's paths then ordered by
//     Algorithm 2 (Section 4.3); leaf vertices excluded;
//   * leaf vertices: listed separately, handled by leaf-match (Section 4.4).
//
// The Match / CF-Match ablation variants of Section 6 reuse the same
// machinery with decomposition disabled or truncated.

#ifndef CFL_ORDER_MATCHING_ORDER_H_
#define CFL_ORDER_MATCHING_ORDER_H_

#include <cstdint>
#include <vector>

#include "cpi/cpi.h"
#include "decomp/cfl_decomposition.h"
#include "graph/graph.h"

namespace cfl {

// How much of the CFL framework to apply (paper Section 6 variants).
enum class DecompositionMode {
  kCfl,         // CFL-Match: core, then forest, then leaf-match
  kCoreForest,  // CF-Match: core, then forest including the leaves
  kNone,        // Match: one ordering over the whole query
};

struct MatchStep {
  VertexId u = kInvalidVertex;
  // BFS-tree parent; kInvalidVertex for the first step (the root).
  VertexId parent = kInvalidVertex;
  // Query neighbors of u earlier in the order, other than `parent`; these
  // are exactly u's backward non-tree edges, validated against the data
  // graph during enumeration (Algorithm 5's ValidateNT).
  std::vector<VertexId> backward;
};

struct MatchingOrder {
  std::vector<MatchStep> steps;  // backtracking order over V_C then V_T
  uint32_t num_core_steps = 0;   // prefix of `steps` that is core-match
  std::vector<VertexId> leaves;  // V_I, for the leaf-match stage
};

// How root-to-leaf paths are sequenced within each substructure.
enum class PathOrderingStrategy {
  // Algorithm 2: greedy, cost-model-driven (the paper's ordering).
  kGreedyCost,
  // Ablation: paths in plain BFS discovery order, no cost model.
  kBfsNatural,
};

MatchingOrder ComputeMatchingOrder(
    const Graph& q, const Cpi& cpi, const CflDecomposition& decomposition,
    DecompositionMode mode,
    PathOrderingStrategy strategy = PathOrderingStrategy::kGreedyCost);

}  // namespace cfl

#endif  // CFL_ORDER_MATCHING_ORDER_H_
