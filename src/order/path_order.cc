#include "order/path_order.h"

#include <algorithm>
#include <limits>
#include <unordered_set>

#include "check/check.h"
#include "order/cardinality.h"

namespace cfl {

std::vector<VertexId> OrderPaths(
    const Cpi& cpi, const std::vector<std::vector<VertexId>>& paths,
    const std::vector<NonTreeEdge>& non_tree_edges,
    const std::vector<VertexId>& seed_sequence) {
  CFL_DCHECK(!paths.empty()) << " ordering an empty path set";

  // Suffix cardinalities per path, computed once (the CPI is immutable).
  std::vector<std::vector<double>> suffix(paths.size());
  for (size_t i = 0; i < paths.size(); ++i) {
    suffix[i] = PathSuffixCardinalities(cpi, paths[i]);
  }

  std::unordered_set<VertexId> in_seq(seed_sequence.begin(),
                                      seed_sequence.end());
  std::vector<VertexId> out;
  std::vector<bool> used(paths.size(), false);
  size_t remaining = paths.size();

  // First path (only when nothing is seeded): argmin c(pi) / |NT(pi)|,
  // where NT(pi) counts non-tree edges incident to pi's vertices
  // (Algorithm 2 line 2). Guard |NT| >= 1 for non-tree-free path sets.
  if (in_seq.empty()) {
    size_t best = 0;
    double best_score = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < paths.size(); ++i) {
      std::unordered_set<VertexId> on_path(paths[i].begin(), paths[i].end());
      uint32_t nt = 0;
      for (const NonTreeEdge& e : non_tree_edges) {
        if (on_path.count(e.u) || on_path.count(e.v)) ++nt;
      }
      double score = suffix[i][0] / std::max<uint32_t>(1, nt);
      if (score < best_score) {
        best_score = score;
        best = i;
      }
    }
    for (VertexId v : paths[best]) {
      out.push_back(v);
      in_seq.insert(v);
    }
    used[best] = true;
    --remaining;
  }

  // Subsequent paths: argmin c(pi^u) / |u.C| with u = pi.p, the deepest
  // vertex pi shares with the sequence (Algorithm 2 lines 4-6).
  while (remaining > 0) {
    size_t best = paths.size();
    size_t best_connect = 0;
    double best_score = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < paths.size(); ++i) {
      if (used[i]) continue;
      // Paths share prefixes with the sequence; walk to the last shared.
      size_t connect = 0;
      while (connect + 1 < paths[i].size() &&
             in_seq.count(paths[i][connect + 1])) {
        ++connect;
      }
      CFL_DCHECK_GT(in_seq.count(paths[i][connect]), 0u)
          << " path " << i << " does not connect to the sequence at depth "
          << connect << "; every path shares at least its root";
      VertexId u = paths[i][connect];
      double denom =
          std::max<size_t>(1, cpi.Candidates(u).size());
      double score = suffix[i][connect] / denom;
      if (score < best_score) {
        best_score = score;
        best = i;
        best_connect = connect;
      }
    }
    CFL_DCHECK_LT(best, paths.size())
        << " no unused path selected with " << remaining << " remaining";
    for (size_t j = best_connect + 1; j < paths[best].size(); ++j) {
      out.push_back(paths[best][j]);
      in_seq.insert(paths[best][j]);
    }
    used[best] = true;
    --remaining;
  }

  return out;
}

}  // namespace cfl
