// Neighborhood Equivalence Classes (NEC).
//
// Two query vertices are NEC-equivalent ("similar", in the paper's words)
// if they have the same label and exactly the same neighborhoods. TurboISO
// merges such vertices to avoid enumerating redundant permutations; paper
// Section 4.4 uses NEC over leaf vertices (where equivalence degenerates to
// equal (label, parent) pairs since leaves have degree one); Table 4 reports
// how little NEC can compress query core-structures.

#ifndef CFL_DECOMP_NEC_H_
#define CFL_DECOMP_NEC_H_

#include <vector>

#include "graph/graph.h"

namespace cfl {

// Partition of V(g) into NEC classes (same label, identical neighbor sets;
// i.e., non-adjacent twins). Singleton classes are included. Classes and
// their members are in ascending vertex order.
std::vector<std::vector<VertexId>> ComputeNecClasses(const Graph& g);

// Number of vertices NEC merging removes: sum over classes of (size - 1).
// This is the paper's Table 4 "Avg reduced vertices" numerator.
uint32_t NecReducedVertices(const Graph& g);

}  // namespace cfl

#endif  // CFL_DECOMP_NEC_H_
