// Forest-IS decomposition (paper Appendix A.5).
//
// The leaf-set V_I generalizes to any *independent set* of the
// forest-structure whose complement keeps q[V_C u V_T] connected. The
// largest such set is the complement of the Connected Minimum Vertex Cover
// (cMVC) of each forest tree, constrained to contain the tree's connection
// vertex. NP-hard in general, cMVC is easy on trees: the paper shows it is
// exactly {vertices of degree >= 2} u {connection vertex}, making the
// leaf-set — degree-one vertices minus connection vertices — the maximum
// independent set obtainable. This module computes the cMVC-based
// independent set explicitly so that claim is checkable (and checked, in
// decomp_test).

#ifndef CFL_DECOMP_FOREST_IS_H_
#define CFL_DECOMP_FOREST_IS_H_

#include <vector>

#include "decomp/cfl_decomposition.h"
#include "graph/graph.h"

namespace cfl {

struct ForestIsResult {
  // The connected minimum vertex cover of the forest-structure: vertices
  // that must be matched before the independent set (the paper's V_T plus
  // the connection vertices).
  std::vector<VertexId> cover;

  // The complementary independent set (the generalized "leaf" stage).
  std::vector<VertexId> independent;
};

// Computes the cMVC-based forest-IS decomposition of q's forest-structure.
// `decomposition` must come from DecomposeCfl(q, ...).
ForestIsResult ComputeForestIs(const Graph& q,
                               const CflDecomposition& decomposition);

// True iff `vertices` is an independent set of q (no edge between any two).
bool IsIndependentSet(const Graph& q, const std::vector<VertexId>& vertices);

}  // namespace cfl

#endif  // CFL_DECOMP_FOREST_IS_H_
