#include "decomp/bfs_tree.h"

#include <algorithm>
#include <stdexcept>

#include "check/check.h"

namespace cfl {

BfsTree BuildBfsTree(const Graph& q, VertexId root) {
  const uint32_t n = q.NumVertices();
  if (root >= n) throw std::invalid_argument("BuildBfsTree: bad root");

  // The tree's shape is part of the engine's determinism contract: children
  // are discovered in ascending vertex-id order, independent of the graph's
  // (label, id) adjacency layout. Queries are tiny, so re-sorting a copy of
  // each neighbor list is free.
  std::vector<VertexId> by_id;
  auto neighbors_by_id = [&](VertexId u) -> const std::vector<VertexId>& {
    std::span<const VertexId> adj = q.Neighbors(u);
    by_id.assign(adj.begin(), adj.end());
    std::sort(by_id.begin(), by_id.end());
    return by_id;
  };

  BfsTree t;
  t.root = root;
  t.parent.assign(n, kInvalidVertex);
  t.level.assign(n, 0);
  t.children.assign(n, {});
  t.non_tree_neighbors.assign(n, {});

  std::vector<bool> seen(n, false);
  seen[root] = true;
  t.level[root] = 1;
  t.order.reserve(n);
  t.order.push_back(root);

  // Standard queue-based BFS over t.order itself.
  for (uint32_t head = 0; head < t.order.size(); ++head) {
    VertexId u = t.order[head];
    for (VertexId w : neighbors_by_id(u)) {
      if (seen[w]) continue;
      seen[w] = true;
      t.parent[w] = u;
      t.level[w] = t.level[u] + 1;
      t.children[u].push_back(w);
      t.order.push_back(w);
    }
  }
  if (t.order.size() != n) {
    throw std::invalid_argument("BuildBfsTree: query graph is disconnected");
  }

  uint32_t max_level = 0;
  for (VertexId v = 0; v < n; ++v) max_level = std::max(max_level, t.level[v]);
  t.levels.assign(max_level, {});
  for (VertexId v : t.order) t.levels[t.level[v] - 1].push_back(v);

  // Classify non-tree edges. In a BFS tree, any non-tree edge connects
  // vertices whose levels differ by at most one.
  for (VertexId a = 0; a < n; ++a) {
    for (VertexId b : neighbors_by_id(a)) {
      if (b < a) continue;
      if (t.parent[a] == b || t.parent[b] == a) continue;
      NonTreeEdge e;
      // Orient so u is the shallower (or equal-level) endpoint.
      e.u = (t.level[a] <= t.level[b]) ? a : b;
      e.v = (e.u == a) ? b : a;
      e.same_level = (t.level[a] == t.level[b]);
      CFL_DCHECK_LE(t.level[e.v] - t.level[e.u], 1u)
          << " non-tree edge (" << e.u << ", " << e.v
          << ") spans more than one BFS level";
      t.non_tree_edges.push_back(e);
      t.non_tree_neighbors[a].push_back(b);
      t.non_tree_neighbors[b].push_back(a);
    }
  }

  return t;
}

}  // namespace cfl
