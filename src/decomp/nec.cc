#include "decomp/nec.h"

#include <algorithm>
#include <map>
#include <utility>

namespace cfl {

std::vector<std::vector<VertexId>> ComputeNecClasses(const Graph& g) {
  // Key each vertex by (label, neighbor list); CSR adjacency is
  // (label, id)-sorted — a total order intrinsic to the vertex set — so
  // equal neighbor sets yield identical spans and vice versa.
  std::map<std::pair<Label, std::vector<VertexId>>, std::vector<VertexId>>
      groups;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    std::span<const VertexId> adj = g.Neighbors(v);
    std::vector<VertexId> key(adj.begin(), adj.end());
    groups[{g.label(v), std::move(key)}].push_back(v);
  }
  std::vector<std::vector<VertexId>> classes;
  classes.reserve(groups.size());
  for (auto& [key, members] : groups) classes.push_back(std::move(members));
  std::sort(classes.begin(), classes.end(),
            [](const std::vector<VertexId>& a, const std::vector<VertexId>& b) {
              return a.front() < b.front();
            });
  return classes;
}

uint32_t NecReducedVertices(const Graph& g) {
  uint32_t reduced = 0;
  for (const std::vector<VertexId>& c : ComputeNecClasses(g)) {
    reduced += static_cast<uint32_t>(c.size()) - 1;
  }
  return reduced;
}

}  // namespace cfl
