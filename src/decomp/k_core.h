// k-core decomposition (Batagelj & Zaversnik [1]).
//
// The paper's conclusion sketches, as future work, extending the
// core-forest-leaf decomposition into a *hierarchical* decomposition of the
// core-structure — k-core, (k-1)-core, ... . This module supplies that
// substrate: core numbers for every vertex in O(|E|) by bucket peeling, and
// the nested shell structure. `decomposition_explorer` and the ordering
// ablation use it to study matching orders that process denser shells first.

#ifndef CFL_DECOMP_K_CORE_H_
#define CFL_DECOMP_K_CORE_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace cfl {

// core[v] = largest k such that v belongs to the k-core of g.
std::vector<uint32_t> CoreNumbers(const Graph& g);

struct CoreHierarchy {
  std::vector<uint32_t> core_number;  // per vertex
  uint32_t degeneracy = 0;            // max core number

  // shells[k] = vertices with core number exactly k (size degeneracy+1).
  std::vector<std::vector<VertexId>> shells;

  // Vertices of the k-core, i.e., core number >= k.
  std::vector<VertexId> KCore(uint32_t k) const;
};

CoreHierarchy ComputeCoreHierarchy(const Graph& g);

}  // namespace cfl

#endif  // CFL_DECOMP_K_CORE_H_
