// Core-Forest-Leaf decomposition of a query graph (paper Section 3).
//
// V(q) is partitioned into:
//   * the core-set V_C: the 2-core of q (Lemma 3.1), or — when q is a tree
//     and so has an empty 2-core — the single chosen root vertex;
//   * the leaf-set V_I: degree-one vertices of q outside V_C (the leaves of
//     the forest trees rooted at their connection vertices, Definition 3.2);
//   * the forest-set V_T: everything else.
//
// The macro matching order is (V_C, V_T, V_I): the dense core prunes early
// via its non-tree edges; Cartesian products over leaf candidates are
// postponed to the very end (paper Challenge 1 / "Our Approach").
//
// Each connected tree of the forest-structure shares exactly one vertex with
// the core — its *connection vertex* — which roots it.

#ifndef CFL_DECOMP_CFL_DECOMPOSITION_H_
#define CFL_DECOMP_CFL_DECOMPOSITION_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace cfl {

enum class VertexClass : uint8_t {
  kCore,    // in V_C
  kForest,  // in V_T
  kLeaf,    // in V_I
};

struct CflDecomposition {
  std::vector<VertexClass> klass;  // size |V(q)|

  std::vector<VertexId> core;    // V_C, ascending
  std::vector<VertexId> forest;  // V_T, ascending
  std::vector<VertexId> leaf;    // V_I, ascending

  // Connection vertices: core vertices with at least one non-core neighbor,
  // i.e., the roots of the forest trees. Subset of `core`.
  std::vector<VertexId> connections;

  bool QueryIsTree() const { return query_is_tree; }
  bool query_is_tree = false;
};

// Decomposes `q`. `tree_root` is used only when q is a tree (empty 2-core),
// in which case that vertex becomes the singleton core-set; it is the root
// chosen by SelectRoot (cpi/root_select.h). Pass kInvalidVertex to default
// to vertex 0 in the tree case.
CflDecomposition DecomposeCfl(const Graph& q,
                              VertexId tree_root = kInvalidVertex);

}  // namespace cfl

#endif  // CFL_DECOMP_CFL_DECOMPOSITION_H_
