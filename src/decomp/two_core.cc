#include "decomp/two_core.h"

#include <vector>

namespace cfl {

std::vector<bool> TwoCoreMembership(const Graph& g) {
  const uint32_t n = g.NumVertices();
  std::vector<uint32_t> degree(n);
  std::vector<VertexId> stack;
  for (VertexId v = 0; v < n; ++v) {
    degree[v] = g.StructuralDegree(v);
    if (degree[v] <= 1) stack.push_back(v);
  }
  std::vector<bool> removed(n, false);
  while (!stack.empty()) {
    VertexId v = stack.back();
    stack.pop_back();
    if (removed[v]) continue;
    removed[v] = true;
    for (VertexId w : g.Neighbors(v)) {
      if (removed[w]) continue;
      if (--degree[w] == 1) stack.push_back(w);
    }
  }
  std::vector<bool> in_core(n);
  for (VertexId v = 0; v < n; ++v) in_core[v] = !removed[v];
  return in_core;
}

std::vector<VertexId> TwoCoreVertices(const Graph& g) {
  std::vector<bool> in_core = TwoCoreMembership(g);
  std::vector<VertexId> vertices;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    if (in_core[v]) vertices.push_back(v);
  }
  return vertices;
}

}  // namespace cfl
