#include "decomp/forest_is.h"

#include <algorithm>

namespace cfl {

ForestIsResult ComputeForestIs(const Graph& q,
                               const CflDecomposition& decomposition) {
  ForestIsResult result;
  const uint32_t n = q.NumVertices();

  // Forest vertices (outside the core). A forest vertex with degree >= 2 in
  // q must be in the cover (it has a child edge and a parent edge, at least
  // one of which another cover vertex cannot absorb on a tree); degree-one
  // vertices form the independent set. Connection vertices sit in the core
  // and anchor the cover's connectivity; they are not re-listed here.
  for (VertexId v = 0; v < n; ++v) {
    if (decomposition.klass[v] == VertexClass::kCore) continue;
    if (q.StructuralDegree(v) >= 2) {
      result.cover.push_back(v);
    } else {
      result.independent.push_back(v);
    }
  }
  std::sort(result.cover.begin(), result.cover.end());
  std::sort(result.independent.begin(), result.independent.end());
  return result;
}

bool IsIndependentSet(const Graph& q, const std::vector<VertexId>& vertices) {
  for (size_t i = 0; i < vertices.size(); ++i) {
    for (size_t j = i + 1; j < vertices.size(); ++j) {
      if (q.HasEdge(vertices[i], vertices[j])) return false;
    }
  }
  return true;
}

}  // namespace cfl
