#include "decomp/cfl_decomposition.h"

#include "decomp/two_core.h"

namespace cfl {

CflDecomposition DecomposeCfl(const Graph& q, VertexId tree_root) {
  const uint32_t n = q.NumVertices();
  CflDecomposition d;
  d.klass.assign(n, VertexClass::kForest);

  std::vector<bool> in_core = TwoCoreMembership(q);
  bool core_empty = true;
  for (uint32_t v = 0; v < n; ++v) {
    if (in_core[v]) {
      core_empty = false;
      break;
    }
  }
  if (core_empty) {
    // q is a tree: the core degenerates to the chosen root (paper Section 3,
    // "if q itself is a tree, the core-set is simply the root vertex of q").
    d.query_is_tree = true;
    VertexId root = (tree_root == kInvalidVertex) ? 0 : tree_root;
    in_core.assign(n, false);
    in_core[root] = true;
  }

  for (VertexId v = 0; v < n; ++v) {
    if (in_core[v]) {
      d.klass[v] = VertexClass::kCore;
    } else if (q.StructuralDegree(v) == 1) {
      // Degree-one vertices outside the core are exactly the leaves of the
      // forest trees rooted at their connection vertices (paper A.5).
      d.klass[v] = VertexClass::kLeaf;
    } else {
      d.klass[v] = VertexClass::kForest;
    }
  }

  for (VertexId v = 0; v < n; ++v) {
    switch (d.klass[v]) {
      case VertexClass::kCore:
        d.core.push_back(v);
        break;
      case VertexClass::kForest:
        d.forest.push_back(v);
        break;
      case VertexClass::kLeaf:
        d.leaf.push_back(v);
        break;
    }
  }

  for (VertexId v : d.core) {
    for (VertexId w : q.Neighbors(v)) {
      if (d.klass[w] != VertexClass::kCore) {
        d.connections.push_back(v);
        break;
      }
    }
  }

  return d;
}

}  // namespace cfl
