// BFS spanning tree of a query graph with non-tree edge classification
// (paper Sections 4.1 and 5.1).
//
// The CPI is defined regarding a BFS tree q_T of q rooted at the selected
// root vertex. Query edges split into tree edges and non-tree edges; the
// latter are further classified (Definition 5.1) as same-level (S-NTE) or
// cross-level (C-NTE), which determines in which construction phase their
// pruning power is exploited (paper Table 2).

#ifndef CFL_DECOMP_BFS_TREE_H_
#define CFL_DECOMP_BFS_TREE_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace cfl {

struct NonTreeEdge {
  VertexId u = kInvalidVertex;  // the endpoint at the lower (or equal) level
  VertexId v = kInvalidVertex;
  bool same_level = false;  // true: S-NTE; false: C-NTE
};

struct BfsTree {
  VertexId root = kInvalidVertex;

  // Parent in q_T; kInvalidVertex for the root.
  std::vector<VertexId> parent;

  // BFS level; the paper numbers levels from 1 at the root.
  std::vector<uint32_t> level;

  // Children in q_T, in ascending vertex order.
  std::vector<std::vector<VertexId>> children;

  // Vertices grouped by level: levels[0] = {root}, levels[1] = ..., etc.
  std::vector<std::vector<VertexId>> levels;

  // BFS visitation order (levels concatenated).
  std::vector<VertexId> order;

  std::vector<NonTreeEdge> non_tree_edges;

  // Per-vertex adjacency restricted to non-tree edges (both directions).
  std::vector<std::vector<VertexId>> non_tree_neighbors;

  uint32_t NumLevels() const { return static_cast<uint32_t>(levels.size()); }

  bool IsTreeEdge(VertexId a, VertexId b) const {
    return parent[a] == b || parent[b] == a;
  }
};

// Builds the BFS tree of the connected graph `q` rooted at `root`.
// Neighbor exploration follows ascending vertex ids, so the tree is
// deterministic.
BfsTree BuildBfsTree(const Graph& q, VertexId root);

}  // namespace cfl

#endif  // CFL_DECOMP_BFS_TREE_H_
