// 2-core computation (paper Lemma 3.1).
//
// The core-structure of a query q — the minimal connected subgraph
// containing all non-tree edges regarding any spanning tree — is exactly
// the 2-core of q: the maximal subgraph in which every vertex has at least
// two neighbors. It is computed by iteratively peeling degree-one vertices,
// in O(|E(q)|) time (Batagelj & Zaversnik).

#ifndef CFL_DECOMP_TWO_CORE_H_
#define CFL_DECOMP_TWO_CORE_H_

#include <vector>

#include "graph/graph.h"

namespace cfl {

// Per-vertex membership flags of the 2-core of `g`. All-false iff `g` is a
// forest.
std::vector<bool> TwoCoreMembership(const Graph& g);

// The vertex ids of the 2-core, ascending. Empty iff `g` is a forest.
std::vector<VertexId> TwoCoreVertices(const Graph& g);

}  // namespace cfl

#endif  // CFL_DECOMP_TWO_CORE_H_
