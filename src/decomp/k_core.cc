#include "decomp/k_core.h"

#include <algorithm>

namespace cfl {

std::vector<uint32_t> CoreNumbers(const Graph& g) {
  const uint32_t n = g.NumVertices();
  std::vector<uint32_t> degree(n), core(n, 0);
  uint32_t max_degree = 0;
  for (VertexId v = 0; v < n; ++v) {
    degree[v] = g.StructuralDegree(v);
    max_degree = std::max(max_degree, degree[v]);
  }

  // Bucket sort vertices by current degree (the O(m) peeling of [1]).
  std::vector<uint32_t> bucket_start(max_degree + 2, 0);
  for (VertexId v = 0; v < n; ++v) bucket_start[degree[v] + 1]++;
  for (uint32_t d = 1; d < bucket_start.size(); ++d) {
    bucket_start[d] += bucket_start[d - 1];
  }
  std::vector<VertexId> sorted(n);       // vertices in degree order
  std::vector<uint32_t> position(n);     // index of v in `sorted`
  {
    std::vector<uint32_t> cursor(bucket_start.begin(),
                                 bucket_start.end() - 1);
    for (VertexId v = 0; v < n; ++v) {
      position[v] = cursor[degree[v]];
      sorted[position[v]] = v;
      cursor[degree[v]]++;
    }
  }

  for (uint32_t i = 0; i < n; ++i) {
    VertexId v = sorted[i];
    core[v] = degree[v];
    for (VertexId w : g.Neighbors(v)) {
      if (degree[w] <= degree[v]) continue;
      // Move w to the front of its bucket, then shrink its degree.
      uint32_t dw = degree[w];
      uint32_t pw = position[w];
      uint32_t front = bucket_start[dw];
      VertexId other = sorted[front];
      if (other != w) {
        std::swap(sorted[front], sorted[pw]);
        position[w] = front;
        position[other] = pw;
      }
      bucket_start[dw]++;
      degree[w]--;
    }
  }
  return core;
}

std::vector<VertexId> CoreHierarchy::KCore(uint32_t k) const {
  std::vector<VertexId> vertices;
  for (uint32_t shell = k; shell < shells.size(); ++shell) {
    vertices.insert(vertices.end(), shells[shell].begin(), shells[shell].end());
  }
  std::sort(vertices.begin(), vertices.end());
  return vertices;
}

CoreHierarchy ComputeCoreHierarchy(const Graph& g) {
  CoreHierarchy h;
  h.core_number = CoreNumbers(g);
  for (uint32_t c : h.core_number) h.degeneracy = std::max(h.degeneracy, c);
  h.shells.assign(h.degeneracy + 1, {});
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    h.shells[h.core_number[v]].push_back(v);
  }
  return h;
}

}  // namespace cfl
