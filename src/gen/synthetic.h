// Synthetic data-graph generator (paper Section 6, "Synthetic Graphs").
//
// The paper generates synthetic data graphs by (1) randomly generating a
// spanning tree, (2) randomly adding extra edges until the target average
// degree is met, and (3) assigning vertex labels following a power-law
// distribution. This module reproduces that process deterministically.

#ifndef CFL_GEN_SYNTHETIC_H_
#define CFL_GEN_SYNTHETIC_H_

#include <cstdint>

#include "graph/graph.h"

namespace cfl {

struct SyntheticOptions {
  uint32_t num_vertices = 100'000;  // paper default |V(G)| = 100k
  double average_degree = 8.0;      // paper default d(G) = 8
  uint32_t num_labels = 50;         // paper default |Sigma| = 50
  // Exponent of the power-law label distribution; label l is drawn with
  // probability proportional to (l+1)^-alpha.
  double label_exponent = 1.5;
  uint64_t seed = 1;
};

// Generates a connected labeled graph per the options. The result has
// exactly max(num_vertices-1, round(num_vertices*average_degree/2)) edges.
Graph MakeSynthetic(const SyntheticOptions& options);

// Appends `count` twin vertices to `g`: each copies a uniformly random
// original vertex's label and neighborhood (a non-adjacent twin) and, with
// probability `adjacent_fraction`, also connects to its sibling (an adjacent
// twin). Real protein-interaction and lexical networks contain many such
// structurally-equivalent vertices — this is what gives the Human and
// WordNet stand-ins the high compression ratios the paper reports for the
// boost technique [14].
Graph AddTwinVertices(const Graph& g, uint32_t count, double adjacent_fraction,
                      uint64_t seed);

}  // namespace cfl

#endif  // CFL_GEN_SYNTHETIC_H_
