#include "gen/synthetic.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <unordered_set>
#include <vector>

#include "gen/rng.h"
#include "graph/graph_builder.h"

namespace cfl {

namespace {

// Samples a label index from the discrete power-law distribution
// P(l) ~ (l+1)^-alpha via inverse-CDF binary search.
class PowerLawSampler {
 public:
  PowerLawSampler(uint32_t num_labels, double alpha) : cdf_(num_labels) {
    double total = 0.0;
    for (uint32_t l = 0; l < num_labels; ++l) {
      total += std::pow(static_cast<double>(l) + 1.0, -alpha);
      cdf_[l] = total;
    }
    for (double& c : cdf_) c /= total;
    cdf_.back() = 1.0;  // guard against rounding
  }

  Label Sample(Rng& rng) const {
    double x = rng.NextDouble();
    auto it = std::lower_bound(cdf_.begin(), cdf_.end(), x);
    return static_cast<Label>(it - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

}  // namespace

Graph MakeSynthetic(const SyntheticOptions& options) {
  const uint32_t n = options.num_vertices;
  if (n == 0) throw std::invalid_argument("MakeSynthetic: empty graph");
  Rng rng(options.seed);

  GraphBuilder builder(n);

  // Labels: power-law over the label alphabet.
  PowerLawSampler labels(options.num_labels, options.label_exponent);
  for (VertexId v = 0; v < n; ++v) builder.SetLabel(v, labels.Sample(rng));

  // Random spanning tree: attach each vertex to a uniformly random earlier
  // vertex (a random recursive tree, connected by construction).
  std::unordered_set<uint64_t> present;
  present.reserve(static_cast<size_t>(n * options.average_degree / 2 * 1.3));
  auto key = [](VertexId a, VertexId b) {
    if (a > b) std::swap(a, b);
    return (static_cast<uint64_t>(a) << 32) | b;
  };
  for (VertexId v = 1; v < n; ++v) {
    VertexId u = static_cast<VertexId>(rng.Below(v));
    builder.AddEdge(u, v);
    present.insert(key(u, v));
  }

  // Extra edges up to the target count.
  uint64_t target_edges = static_cast<uint64_t>(
      std::llround(static_cast<double>(n) * options.average_degree / 2.0));
  target_edges = std::max<uint64_t>(target_edges, n - 1);
  const uint64_t max_possible =
      static_cast<uint64_t>(n) * (n - 1) / 2;
  target_edges = std::min(target_edges, max_possible);
  uint64_t edges = n - 1;
  while (edges < target_edges) {
    VertexId a = static_cast<VertexId>(rng.Below(n));
    VertexId b = static_cast<VertexId>(rng.Below(n));
    if (a == b) continue;
    if (!present.insert(key(a, b)).second) continue;
    builder.AddEdge(a, b);
    ++edges;
  }

  return std::move(builder).Build();
}

Graph AddTwinVertices(const Graph& g, uint32_t count, double adjacent_fraction,
                      uint64_t seed) {
  const uint32_t n = g.NumVertices();
  Rng rng(seed);
  GraphBuilder builder(n + count);
  for (VertexId v = 0; v < n; ++v) {
    builder.SetLabel(v, g.label(v));
    for (VertexId w : g.Neighbors(v)) {
      if (w >= v) builder.AddEdge(v, w);
    }
  }
  // Twins are added in groups of 2-4 copies of one source vertex, because
  // copies of the *same* source are guaranteed structurally equivalent to
  // each other (copies of different sources perturb each other's
  // neighborhoods and rarely stay equivalent).
  uint32_t added = 0;
  while (added < count) {
    VertexId src = static_cast<VertexId>(rng.Below(n));
    bool adjacent = rng.Chance(adjacent_fraction);
    uint32_t group = std::min<uint32_t>(
        count - added, 2 + static_cast<uint32_t>(rng.Below(3)));
    std::vector<VertexId> siblings;
    for (uint32_t i = 0; i < group; ++i) {
      VertexId twin = n + added++;
      builder.SetLabel(twin, g.label(src));
      for (VertexId w : g.Neighbors(src)) builder.AddEdge(twin, w);
      if (adjacent) {
        // Adjacent twins form a clique with the source.
        builder.AddEdge(twin, src);
        for (VertexId s : siblings) builder.AddEdge(twin, s);
      }
      siblings.push_back(twin);
    }
  }
  return std::move(builder).Build();
}

}  // namespace cfl
