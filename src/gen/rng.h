// Deterministic pseudo-random number generation for generators and tests.
//
// A small, fast SplitMix64/xoshiro-style generator with explicit seeding so
// every experiment in the repository is reproducible bit-for-bit across
// runs and platforms (std::mt19937 would also work, but distribution
// implementations differ across standard libraries; we implement our own
// bounded sampling).

#ifndef CFL_GEN_RNG_H_
#define CFL_GEN_RNG_H_

#include <cstdint>

namespace cfl {

class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed ^ kGolden) {
    // Warm up so nearby seeds diverge immediately.
    Next64();
    Next64();
  }

  // Uniform 64-bit value.
  uint64_t Next64() {
    // SplitMix64 (public domain, Sebastiano Vigna).
    state_ += 0x9e3779b97f4a7c15ULL;
    uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Uniform in [0, bound); bound must be > 0.
  uint64_t Below(uint64_t bound) {
    // Debiased multiply-shift (Lemire).
    while (true) {
      uint64_t x = Next64();
      __uint128_t m = static_cast<__uint128_t>(x) * bound;
      uint64_t lo = static_cast<uint64_t>(m);
      if (lo >= bound || lo >= static_cast<uint64_t>(-bound) % bound) {
        return static_cast<uint64_t>(m >> 64);
      }
    }
  }

  // Uniform in [lo, hi] inclusive.
  uint64_t Between(uint64_t lo, uint64_t hi) { return lo + Below(hi - lo + 1); }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
  }

  // True with probability p.
  bool Chance(double p) { return NextDouble() < p; }

 private:
  static constexpr uint64_t kGolden = 0x9e3779b97f4a7c15ULL;
  uint64_t state_;
};

}  // namespace cfl

#endif  // CFL_GEN_RNG_H_
