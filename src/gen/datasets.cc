#include "gen/datasets.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "gen/synthetic.h"

namespace cfl {

namespace {

// Distinct deterministic seeds per dataset so stand-ins are uncorrelated.
constexpr uint64_t kHprdSeed = 0x48505244;      // "HPRD"
constexpr uint64_t kYeastSeed = 0x59454153;     // "YEAS"
constexpr uint64_t kHumanSeed = 0x48554d41;     // "HUMA"
constexpr uint64_t kWordNetSeed = 0x574f5244;   // "WORD"
constexpr uint64_t kDblpSeed = 0x44424c50;      // "DBLP"

// Builds a stand-in with the dataset's statistics. `twin_fraction` of the
// vertices are structurally-equivalent twins of existing vertices, matching
// the dataset's reported compressibility under [14] (protein networks and
// WordNet contain many vertices with identical neighborhoods; scale-free
// synthetic graphs contain almost none).
Graph MakeScaled(uint32_t vertices, uint64_t edges, uint32_t labels,
                 double label_exponent, double twin_fraction, uint64_t seed,
                 double scale) {
  if (scale <= 0.0 || scale > 1.0) {
    throw std::invalid_argument("dataset scale must be in (0, 1]");
  }
  uint32_t total = std::max<uint32_t>(
      16, static_cast<uint32_t>(std::llround(vertices * scale)));
  uint32_t twins = static_cast<uint32_t>(total * twin_fraction);
  SyntheticOptions options;
  options.num_vertices = total - twins;
  // Preserve the dataset's average degree at any scale. A twin copies a full
  // neighborhood (~avg_degree edges each), so the base graph is generated
  // correspondingly sparser: d_base * (n_base + 2*twins) / total = target.
  double target_degree =
      2.0 * static_cast<double>(edges) / static_cast<double>(vertices);
  options.average_degree =
      target_degree * total /
      (static_cast<double>(options.num_vertices) + 2.0 * twins);
  options.num_labels = labels;
  options.label_exponent = label_exponent;
  options.seed = seed;
  Graph base = MakeSynthetic(options);
  if (twins == 0) return base;
  return AddTwinVertices(base, twins, /*adjacent_fraction=*/0.3, seed ^ 0x7711ull);
}

}  // namespace

Graph MakeHprdLike(double scale) {
  return MakeScaled(9'460, 37'081, 307, 1.2, /*twin_fraction=*/0.005,
                    kHprdSeed, scale);
}

Graph MakeYeastLike(double scale) {
  return MakeScaled(3'112, 12'519, 71, 1.2, /*twin_fraction=*/0.01,
                    kYeastSeed, scale);
}

Graph MakeHumanLike(double scale) {
  return MakeScaled(4'674, 86'282, 44, 1.0, /*twin_fraction=*/0.35,
                    kHumanSeed, scale);
}

Graph MakeWordNetLike(double scale) {
  return MakeScaled(82'670, 133'445, 5, 0.8, /*twin_fraction=*/0.30,
                    kWordNetSeed, scale);
}

Graph MakeDblpLike(double scale) {
  // The paper assigns one of 100 labels uniformly at random to each DBLP
  // vertex; exponent 0 makes the power-law sampler uniform.
  return MakeScaled(317'080, 1'049'866, 100, 0.0, /*twin_fraction=*/0.10,
                    kDblpSeed, scale);
}

Graph MakeDatasetLike(const std::string& name, double scale) {
  if (name == "hprd") return MakeHprdLike(scale);
  if (name == "yeast") return MakeYeastLike(scale);
  if (name == "human") return MakeHumanLike(scale);
  if (name == "wordnet") return MakeWordNetLike(scale);
  if (name == "dblp") return MakeDblpLike(scale);
  throw std::invalid_argument("unknown dataset stand-in: " + name);
}

const std::vector<std::string>& DatasetNames() {
  static const std::vector<std::string>* names = new std::vector<std::string>{
      "hprd", "yeast", "human", "wordnet", "dblp"};
  return *names;
}

}  // namespace cfl
