#include "gen/query_gen.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "gen/rng.h"
#include "graph/graph_builder.h"

namespace cfl {

namespace {

struct WalkResult {
  std::vector<VertexId> vertices;                       // data-vertex ids
  std::vector<std::pair<uint32_t, uint32_t>> tree;      // local-id walk tree
  std::vector<std::pair<uint32_t, uint32_t>> induced;   // all induced edges
};

// Collects `k` distinct vertices by random walk; returns false if the walk
// got stuck (e.g., started in a tiny component).
bool RandomWalk(const Graph& data, uint32_t k, Rng& rng, WalkResult* out) {
  const uint32_t n = data.NumVertices();
  out->vertices.clear();
  out->tree.clear();
  out->induced.clear();

  VertexId start = static_cast<VertexId>(rng.Below(n));
  if (data.StructuralDegree(start) == 0) return false;

  std::unordered_map<VertexId, uint32_t> local;  // data id -> local id
  local.reserve(k * 2);
  local.emplace(start, 0);
  out->vertices.push_back(start);

  VertexId cur = start;
  uint64_t budget = static_cast<uint64_t>(k) * 400 + 1000;
  while (out->vertices.size() < k && budget-- > 0) {
    std::span<const VertexId> adj = data.Neighbors(cur);
    VertexId next = adj[rng.Below(adj.size())];
    auto [it, inserted] =
        local.emplace(next, static_cast<uint32_t>(out->vertices.size()));
    if (inserted) {
      out->tree.emplace_back(local[cur], it->second);
      out->vertices.push_back(next);
    }
    cur = next;
  }
  if (out->vertices.size() < k) return false;

  // Induced edges among the collected vertices (queries are subgraphs of the
  // data graph, so these are the only edges available).
  for (uint32_t i = 0; i < k; ++i) {
    for (uint32_t j = i + 1; j < k; ++j) {
      if (data.HasEdge(out->vertices[i], out->vertices[j])) {
        out->induced.emplace_back(i, j);
      }
    }
  }
  return true;
}

Graph BuildQuery(const Graph& data, const WalkResult& walk,
                 const std::vector<std::pair<uint32_t, uint32_t>>& edges) {
  GraphBuilder b(static_cast<uint32_t>(walk.vertices.size()));
  for (uint32_t i = 0; i < walk.vertices.size(); ++i) {
    b.SetLabel(i, data.label(walk.vertices[i]));
  }
  for (const auto& [u, v] : edges) b.AddEdge(u, v);
  return std::move(b).Build();
}

}  // namespace

Graph GenerateQuery(const Graph& data, const QueryGenOptions& options) {
  const uint32_t k = options.num_vertices;
  if (k < 2) throw std::invalid_argument("GenerateQuery: need >= 2 vertices");
  if (data.NumVertices() < k) {
    throw std::runtime_error("GenerateQuery: data graph smaller than query");
  }
  Rng rng(options.seed);

  // Sparse target: average degree <= 3, i.e., at most floor(1.5k) edges.
  const uint64_t sparse_edge_cap = (3ull * k) / 2;
  // Non-sparse target: average degree > 3, i.e., more than 1.5k edges.
  const uint64_t dense_edge_min = sparse_edge_cap + 1;

  WalkResult best;
  bool have_best = false;

  for (uint32_t attempt = 0; attempt < options.max_attempts; ++attempt) {
    WalkResult walk;
    if (!RandomWalk(data, k, rng, &walk)) continue;

    if (options.sparse) {
      // Keep the walk tree (connectivity), then pad with a shuffled subset
      // of the remaining induced edges up to the cap.
      std::vector<std::pair<uint32_t, uint32_t>> edges = walk.tree;
      for (auto& [u, v] : edges) {
        if (u > v) std::swap(u, v);
      }
      std::sort(edges.begin(), edges.end());
      std::vector<std::pair<uint32_t, uint32_t>> extras;
      for (auto [u, v] : walk.induced) {
        if (!std::binary_search(edges.begin(), edges.end(),
                                std::make_pair(u, v))) {
          extras.emplace_back(u, v);
        }
      }
      // Fisher-Yates shuffle driven by our deterministic RNG.
      for (size_t i = extras.size(); i > 1; --i) {
        std::swap(extras[i - 1], extras[rng.Below(i)]);
      }
      for (auto [u, v] : extras) {
        if (edges.size() >= sparse_edge_cap) break;
        edges.emplace_back(u, v);
      }
      return BuildQuery(data, walk, edges);
    }

    // Non-sparse: need all induced edges to exceed the density bar.
    if (walk.induced.size() >= dense_edge_min) {
      return BuildQuery(data, walk, walk.induced);
    }
    if (!have_best || walk.induced.size() > best.induced.size()) {
      best = std::move(walk);
      have_best = true;
    }
  }

  if (!have_best) {
    throw std::runtime_error(
        "GenerateQuery: random walks failed to collect enough vertices");
  }
  // The data graph has no region dense enough; return the densest subgraph
  // found (callers treat density classes as best-effort, as the paper's
  // generator necessarily must on sparse data graphs).
  return BuildQuery(data, best, best.induced);
}

std::vector<Graph> GenerateQuerySet(const Graph& data, uint32_t count,
                                    uint32_t num_vertices, bool sparse,
                                    uint64_t seed) {
  std::vector<Graph> queries;
  queries.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    QueryGenOptions options;
    options.num_vertices = num_vertices;
    options.sparse = sparse;
    options.seed = seed + i;
    queries.push_back(GenerateQuery(data, options));
  }
  return queries;
}

}  // namespace cfl
