// Stand-in builders for the paper's evaluation datasets.
//
// The paper evaluates on HPRD, Yeast, and Human (protein-interaction
// networks with Gene Ontology labels), plus WordNet and DBLP in the
// appendix. Those downloads are unavailable offline, so each builder here
// synthesizes a graph matching the dataset's *published summary statistics*
// (vertex count, edge count, distinct labels, average degree, power-law
// label skew) via the paper's own synthetic process (random spanning tree +
// random extra edges + power-law labels). See DESIGN.md §4 for why this
// substitution preserves the behaviors the experiments measure.
//
// Every builder takes a `scale` in (0, 1]: vertex and edge counts are
// multiplied by it so benches can run at laptop-friendly sizes by default
// while `CFL_BENCH_SCALE=full` reproduces paper-scale graphs.

#ifndef CFL_GEN_DATASETS_H_
#define CFL_GEN_DATASETS_H_

#include <string>
#include <vector>

#include "graph/graph.h"

namespace cfl {

// HPRD: 9,460 vertices, 37,081 edges, 307 labels, avg degree 7.8.
Graph MakeHprdLike(double scale = 1.0);

// Yeast: 3,112 vertices, 12,519 edges, 71 labels, avg degree 8.1.
Graph MakeYeastLike(double scale = 1.0);

// Human: 4,674 vertices, 86,282 edges, 44 labels, avg degree 36.9 (dense;
// the paper's hardest real graph).
Graph MakeHumanLike(double scale = 1.0);

// WordNet: 82,670 vertices, 133,445 edges, 5 labels, avg degree 3.3.
Graph MakeWordNetLike(double scale = 1.0);

// DBLP: 317,080 vertices, 1,049,866 edges, 100 uniformly-random labels
// (the paper assigns random labels since DBLP is unlabeled), avg degree 6.6.
Graph MakeDblpLike(double scale = 1.0);

// Name-based lookup used by benches/examples ("hprd", "yeast", "human",
// "wordnet", "dblp"). Throws std::invalid_argument for unknown names.
Graph MakeDatasetLike(const std::string& name, double scale = 1.0);

// Names accepted by MakeDatasetLike.
const std::vector<std::string>& DatasetNames();

}  // namespace cfl

#endif  // CFL_GEN_DATASETS_H_
