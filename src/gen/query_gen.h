// Query-graph generation (paper Section 6, "Query Graphs").
//
// The paper extracts each query as a connected subgraph of the data graph by
// random walk, and splits query sets into "sparse" (average degree <= 3,
// suffix S) and "non-sparse" (average degree > 3, suffix N). We reproduce
// this: a random walk collects the requested number of distinct vertices,
// the walk's tree edges guarantee connectivity, and the density target is
// met by keeping either a thinned subset (sparse) or all (non-sparse) of the
// remaining induced edges. Because a query must be an actual subgraph of the
// data graph, a non-sparse query is only possible if the walk lands in a
// sufficiently dense region; the generator retries walks until the density
// class is met (or returns its densest attempt).

#ifndef CFL_GEN_QUERY_GEN_H_
#define CFL_GEN_QUERY_GEN_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace cfl {

struct QueryGenOptions {
  uint32_t num_vertices = 50;  // |V(q)|
  bool sparse = true;          // true: avg degree <= 3; false: > 3
  uint64_t seed = 1;
  uint32_t max_attempts = 200;  // walk retries to hit the density class
};

// Generates one query. Throws std::runtime_error if `data` has fewer
// vertices than requested or no walk can collect enough vertices.
Graph GenerateQuery(const Graph& data, const QueryGenOptions& options);

// Generates `count` queries with seeds seed, seed+1, ... (paper query sets
// contain 100 queries each).
std::vector<Graph> GenerateQuerySet(const Graph& data, uint32_t count,
                                    uint32_t num_vertices, bool sparse,
                                    uint64_t seed);

}  // namespace cfl

#endif  // CFL_GEN_QUERY_GEN_H_
