// Backward-edge verification against a per-descent BackwardPlan.
//
// The scalar entry is the reference: probe the plan's edges in order, one
// bit-test (hub row) or HasEdge (non-hub) each, and report the first
// failure index. The batched entry exploits that when every backward
// endpoint is a hub — the common case the hub index was built for — all
// probes for a candidate v read the SAME word offset (v / 64) of different
// rows, so four rows can be conjoined word-at-a-time and tested with a
// single AND against v's bit; only a failing batch is re-scanned to recover
// the exact first-fail index, keeping the probes-performed count (stats)
// bit-identical to the scalar loop.
//
// Both entries live in this always-scalar translation unit: the batched
// form is plain 64-bit code, it needs no intrinsics — the avx2 namespace
// placement only ties it to the dispatch tier that selects it.

#include "kernels/kernels.h"

namespace cfl::kernels {

namespace {

inline bool RowBit(const uint64_t* row, VertexId v) {
  return ((row[v >> 6] >> (v & 63)) & 1u) != 0;
}

uint32_t VerifyPerEdge(const Graph& data, const BackwardPlan& plan,
                       VertexId v) {
  const size_t n = plan.edges.size();
  for (size_t k = 0; k < n; ++k) {
    const BackwardPlan::Edge& e = plan.edges[k];
    const bool ok =
        e.row != nullptr ? RowBit(e.row, v) : data.HasEdge(e.mapped, v);
    if (!ok) return static_cast<uint32_t>(k);
  }
  return static_cast<uint32_t>(n);
}

}  // namespace

namespace scalar {
uint32_t VerifyBackwardEdges(const Graph& data, const BackwardPlan& plan,
                             VertexId v) {
  return VerifyPerEdge(data, plan, v);
}
}  // namespace scalar

#if defined(CFL_KERNELS_HAVE_AVX2)
namespace avx2 {
uint32_t VerifyBackwardEdges(const Graph& data, const BackwardPlan& plan,
                             VertexId v) {
  const size_t n = plan.edges.size();
  if (!plan.all_hub || n < 4) return VerifyPerEdge(data, plan, v);
  const size_t word = v >> 6;
  const uint64_t bit = uint64_t{1} << (v & 63);
  size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    const uint64_t conj =
        plan.edges[k].row[word] & plan.edges[k + 1].row[word] &
        plan.edges[k + 2].row[word] & plan.edges[k + 3].row[word];
    if ((conj & bit) == 0) break;  // first failure is inside this batch
  }
  for (; k < n; ++k) {
    if (!RowBit(plan.edges[k].row, v)) return static_cast<uint32_t>(k);
  }
  return static_cast<uint32_t>(n);
}
}  // namespace avx2
#endif  // CFL_KERNELS_HAVE_AVX2

}  // namespace cfl::kernels
