// SIMD kernel layer: the three primitives the hot paths spend their cycles
// in, behind one dispatch-at-startup indirection (DESIGN.md §11).
//
//   * Ordered-set intersection (`IntersectSorted` / `IntersectCount` /
//     `IntersectPositions`): strictly-ascending uint32 inputs — exactly the
//     label-partitioned adjacency runs and candidate sets the CPI builder
//     intersects (Algorithm 3 / Lemma 5.1). The strategy is size-adaptive:
//     balanced inputs take a block-compare merge (AVX2: 8-lane all-pairs
//     compare per block), skewed inputs take galloping binary search of the
//     small side inside the large one, so a hub-sized run against a handful
//     of candidates costs O(small · log large), not O(large).
//   * Backward-edge verification (`VerifyBackwardEdges`): all backward
//     non-tree edges of an enumeration step, batched against the data
//     graph's per-hub bitmap rows (graph.h) word-at-a-time. The enumerator
//     builds a `BackwardPlan` once per descent (the shallower bindings are
//     fixed for the whole candidate sweep), so per candidate the hub-index
//     lookups and mapping loads are gone and each hub edge is one AND-test.
//   * Software prefetch (`PrefetchSpan`): bounded touch-ahead for the next
//     candidate span / CPI adjacency offsets on the enumeration descent.
//
// Dispatch model: the implementation is selected ONCE, on first use, from
// cpuid (AVX2 when the binary carries the AVX2 translation unit and the CPU
// reports support) — overridable with CFL_FORCE_SCALAR=1 for testing, which
// also disables prefetch so the scalar configuration is the pure reference.
// Both implementations are always linked; the `scalar` and `avx2`
// namespaces expose them directly so property tests can pit them against
// each other bit-for-bit without touching the global selection.
//
// Semantics contract: for identical inputs every implementation returns
// identical bytes — same output values, same order, same first-failure
// index from VerifyBackwardEdges. The SIMD paths are perf variants, never
// behavioral ones; tests/kernels_test.cc enforces this across randomized
// and adversarial inputs.
//
// Raw intrinsics and <immintrin.h> are confined to src/kernels/ by
// tools/cfl_lint (rule `raw-simd`); engine code sees only this header.

#ifndef CFL_KERNELS_KERNELS_H_
#define CFL_KERNELS_KERNELS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "check/thread_annotations.h"
#include "graph/graph.h"

namespace cfl::kernels {

// ---- dispatch -----------------------------------------------------------

enum class Isa : uint8_t { kScalar, kAvx2 };

// True iff the AVX2 translation unit was compiled into this binary
// (x86-64 builds; other architectures link scalar forwarders).
bool Avx2CompiledIn();

// True iff Avx2CompiledIn() and the running CPU reports AVX2.
bool Avx2Available();

// The implementation selected at startup (cpuid + CFL_FORCE_SCALAR).
Isa ActiveIsa();
const char* IsaName(Isa isa);

// True unless CFL_FORCE_SCALAR pinned the pure-scalar configuration.
// Call sites gate their PrefetchSpan calls on this so a forced-scalar run
// measures the genuinely un-accelerated baseline.
bool PrefetchEnabled();

// Test-only: re-point the dispatch table at `isa` (kAvx2 requires
// Avx2Available()). Not thread-safe — call only from single-threaded test
// setup; the normal selection path never mutates after first use.
void ForceIsaForTesting(Isa isa);

// ---- backward-edge verification ----------------------------------------

// One step's backward non-tree edges, resolved against the current partial
// mapping: per edge the mapped data vertex and, when that vertex is a hub,
// the base of its bitmap row (nullptr otherwise). Rebuilt by the enumerator
// on every descent; `Reset` keeps the vector's capacity across rebuilds.
struct BackwardPlan {
  struct Edge {
    const uint64_t* row;  // hub bitmap row of `mapped`, or nullptr
    VertexId mapped;      // M(w) for backward endpoint w
  };
  std::vector<Edge> edges;
  bool all_hub = true;  // every edge has a row => pure bit-parallel pass

  void Reset() {
    edges.clear();
    all_hub = true;
  }
  void Add(const Graph& data, VertexId mapped) {
    const uint64_t* row = data.HubRowWords(mapped);
    if (row == nullptr) all_hub = false;
    edges.push_back({row, mapped});
  }
};

// Verifies that candidate `v` is adjacent to every mapped endpoint in
// `plan`, in plan order. Returns the index of the first failing edge, or
// plan.edges.size() when all pass — callers derive both the accept/reject
// decision and the exact probes-performed count (stats) from it.
uint32_t VerifyBackwardEdges(const Graph& data, const BackwardPlan& plan,
                             VertexId v);

// ---- ordered-set intersection ------------------------------------------

// All inputs must be strictly ascending (the CSR/CPI sortedness invariant);
// the outputs below are then strictly ascending too.

// Appends a ∩ b (element values) to `out`.
void IntersectSorted(std::span<const uint32_t> a, std::span<const uint32_t> b,
                     std::vector<uint32_t>& out);

// |a ∩ b| without materializing it.
uint64_t IntersectCount(std::span<const uint32_t> a,
                        std::span<const uint32_t> b);

// Appends the positions (indices into `b`) of the elements of a ∩ b.
void IntersectPositions(std::span<const uint32_t> a,
                        std::span<const uint32_t> b,
                        std::vector<uint32_t>& out);

// ---- prefetch -----------------------------------------------------------

// Read-prefetches the first cache lines of [p, p + bytes) — bounded to a
// few lines so a huge span cannot flush the cache. Safe on any address;
// purely a hint. Call sites gate on PrefetchEnabled().
void PrefetchSpan(const void* p, size_t bytes);

// ---- per-implementation entry points (tests, dispatch internals) --------

// The scalar reference: plain merge loop plus the same galloping cutover
// the dispatched entry uses. Always available, on every architecture.
namespace scalar {
void IntersectSorted(std::span<const uint32_t> a, std::span<const uint32_t> b,
                     std::vector<uint32_t>& out);
uint64_t IntersectCount(std::span<const uint32_t> a,
                        std::span<const uint32_t> b);
void IntersectPositions(std::span<const uint32_t> a,
                        std::span<const uint32_t> b,
                        std::vector<uint32_t>& out);
uint32_t VerifyBackwardEdges(const Graph& data, const BackwardPlan& plan,
                             VertexId v);
}  // namespace scalar

// The AVX2 implementation. Only callable when Avx2Available(); on builds
// without the AVX2 translation unit these symbols forward to scalar (and
// Avx2CompiledIn() is false).
namespace avx2 {
void IntersectSorted(std::span<const uint32_t> a, std::span<const uint32_t> b,
                     std::vector<uint32_t>& out);
uint64_t IntersectCount(std::span<const uint32_t> a,
                        std::span<const uint32_t> b);
void IntersectPositions(std::span<const uint32_t> a,
                        std::span<const uint32_t> b,
                        std::vector<uint32_t>& out);
uint32_t VerifyBackwardEdges(const Graph& data, const BackwardPlan& plan,
                             VertexId v);
}  // namespace avx2

// ---- implementation of the inline hot-path wrappers ---------------------

namespace detail {
struct Dispatch {
  Isa isa = Isa::kScalar;
  bool prefetch = false;
  void (*intersect)(std::span<const uint32_t>, std::span<const uint32_t>,
                    std::vector<uint32_t>&) = nullptr;
  uint64_t (*count)(std::span<const uint32_t>, std::span<const uint32_t>) =
      nullptr;
  void (*positions)(std::span<const uint32_t>, std::span<const uint32_t>,
                    std::vector<uint32_t>&) = nullptr;
  uint32_t (*verify)(const Graph&, const BackwardPlan&, VertexId) = nullptr;
};

// Out-of-line slow path: builds the table on first use (thread-safe
// function-local static) and publishes it through `active_ptr`.
const Dispatch& ActiveSlow();

// Published table pointer. On x86 the acquire load is a plain load, so the
// hot path pays one load + one predictable branch instead of a function
// call with a static-init guard per kernel invocation. The one-time
// initialization (and ForceIsaForTesting) goes through ActiveSlow().
extern std::atomic<const Dispatch*> active_ptr CFL_ATOMIC_INTENT(publish);

inline const Dispatch& Active() {
  const Dispatch* d = active_ptr.load(std::memory_order_acquire);
  return d != nullptr ? *d : ActiveSlow();
}
}  // namespace detail

inline void IntersectSorted(std::span<const uint32_t> a,
                            std::span<const uint32_t> b,
                            std::vector<uint32_t>& out) {
  detail::Active().intersect(a, b, out);
}

inline uint64_t IntersectCount(std::span<const uint32_t> a,
                               std::span<const uint32_t> b) {
  return detail::Active().count(a, b);
}

inline void IntersectPositions(std::span<const uint32_t> a,
                               std::span<const uint32_t> b,
                               std::vector<uint32_t>& out) {
  detail::Active().positions(a, b, out);
}

inline uint32_t VerifyBackwardEdges(const Graph& data,
                                    const BackwardPlan& plan, VertexId v) {
  // The implementations only diverge on the batched all-hub path; small or
  // mixed plans take the same per-edge probes everywhere, so run them
  // inline and keep the dispatch indirection off the 1-2 edge common case.
  const size_t n = plan.edges.size();
  if (!plan.all_hub || n < 4) {
    for (size_t k = 0; k < n; ++k) {
      const BackwardPlan::Edge& e = plan.edges[k];
      const bool adjacent = e.row != nullptr
                                ? ((e.row[v >> 6] >> (v & 63)) & 1u) != 0
                                : data.HasEdge(e.mapped, v);
      if (!adjacent) return static_cast<uint32_t>(k);
    }
    return static_cast<uint32_t>(n);
  }
  return detail::Active().verify(data, plan, v);
}

inline bool PrefetchEnabled() { return detail::Active().prefetch; }

inline void PrefetchSpan(const void* p, size_t bytes) {
  // At most 4 lines: enough to cover a typical adjacency-offset pair or the
  // head of a candidate span without displacing hot lines.
  constexpr size_t kLine = 64;
  constexpr size_t kMaxLines = 4;
  const char* c = static_cast<const char*>(p);
  const size_t lines = bytes == 0 ? 0 : (bytes - 1) / kLine + 1;
  const size_t n = lines < kMaxLines ? lines : kMaxLines;
  for (size_t i = 0; i < n; ++i) {
    __builtin_prefetch(c + i * kLine, /*rw=*/0, /*locality=*/1);
  }
}

}  // namespace cfl::kernels

#endif  // CFL_KERNELS_KERNELS_H_
