// Implementation selection for the kernel layer. The dispatch table is
// built exactly once, inside a function-local static, from two inputs:
// whether this binary carries the AVX2 translation unit and the CPU reports
// AVX2 (cpuid via __builtin_cpu_supports), and whether CFL_FORCE_SCALAR
// pins the scalar reference. Reads go through cfl::env's immutable snapshot
// so the selection is safe to trigger from any thread at any time.
//
// On builds without the AVX2 translation unit (non-x86 targets), the
// cfl::kernels::avx2 symbols are defined here as forwarders to scalar so
// the property tests link everywhere; Avx2CompiledIn() tells them apart.

#include <cstring>

#include "check/env.h"
#include "kernels/kernels.h"

namespace cfl::kernels {

namespace {

bool ForceScalar() {
  const char* v = env::Get("CFL_FORCE_SCALAR");
  return v != nullptr && std::strcmp(v, "0") != 0;
}

detail::Dispatch MakeDispatch(Isa isa) {
  detail::Dispatch d;
  d.isa = isa;
  if (isa == Isa::kAvx2) {
    d.prefetch = true;
    d.intersect = &avx2::IntersectSorted;
    d.count = &avx2::IntersectCount;
    d.positions = &avx2::IntersectPositions;
    d.verify = &avx2::VerifyBackwardEdges;
  } else {
    d.prefetch = false;
    d.intersect = &scalar::IntersectSorted;
    d.count = &scalar::IntersectCount;
    d.positions = &scalar::IntersectPositions;
    d.verify = &scalar::VerifyBackwardEdges;
  }
  return d;
}

detail::Dispatch& MutableActive() {
  static detail::Dispatch dispatch = MakeDispatch(
      !ForceScalar() && Avx2Available() ? Isa::kAvx2 : Isa::kScalar);
  return dispatch;
}

}  // namespace

bool Avx2CompiledIn() {
#if defined(CFL_KERNELS_HAVE_AVX2)
  return true;
#else
  return false;
#endif
}

bool Avx2Available() {
#if defined(CFL_KERNELS_HAVE_AVX2)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

Isa ActiveIsa() { return detail::Active().isa; }

const char* IsaName(Isa isa) {
  return isa == Isa::kAvx2 ? "avx2" : "scalar";
}

void ForceIsaForTesting(Isa isa) {
  detail::Dispatch& d = MutableActive();
  d = MakeDispatch(isa);
  detail::active_ptr.store(&d, std::memory_order_release);
}

namespace detail {
std::atomic<const Dispatch*> active_ptr CFL_ATOMIC_INTENT(publish){nullptr};

const Dispatch& ActiveSlow() {
  Dispatch& d = MutableActive();
  active_ptr.store(&d, std::memory_order_release);
  return d;
}
}  // namespace detail

#if !defined(CFL_KERNELS_HAVE_AVX2)
// Non-x86 builds: the avx2 entry points exist (tests reference them) but
// forward to the scalar reference; dispatch never selects them.
namespace avx2 {
void IntersectSorted(std::span<const uint32_t> a, std::span<const uint32_t> b,
                     std::vector<uint32_t>& out) {
  scalar::IntersectSorted(a, b, out);
}
uint64_t IntersectCount(std::span<const uint32_t> a,
                        std::span<const uint32_t> b) {
  return scalar::IntersectCount(a, b);
}
void IntersectPositions(std::span<const uint32_t> a,
                        std::span<const uint32_t> b,
                        std::vector<uint32_t>& out) {
  scalar::IntersectPositions(a, b, out);
}
uint32_t VerifyBackwardEdges(const Graph& data, const BackwardPlan& plan,
                             VertexId v) {
  return scalar::VerifyBackwardEdges(data, plan, v);
}
}  // namespace avx2
#endif  // !CFL_KERNELS_HAVE_AVX2

}  // namespace cfl::kernels
