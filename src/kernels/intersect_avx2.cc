// AVX2 implementation of the intersection primitives. Balanced inputs take
// the classic 8-lane block-compare merge (Schlegel/Katsogridakis-style):
// load 8 elements from each side, compare one block against all 8 rotations
// of the other to get a per-lane match mask, compact the matched lanes with
// a 256-entry shuffle table, then advance whichever block has the smaller
// maximum. Skewed inputs take the same galloping cutover as the scalar
// implementation (intersect_common.h) — galloping is branch-and-search
// bound, so SIMD adds nothing there.
//
// This translation unit is the only one compiled with -mavx2 (see
// CMakeLists.txt); it is safe to *link* everywhere and must only be
// *called* when Avx2Available() — the dispatch layer guarantees that.
//
// Correctness note on the block advance: when a block of `a` is retired
// (a_max <= b_max), every element of it is <= b_max, and all unseen `b`
// elements are > b_max — no match can be missed. Matched lanes are emitted
// exactly once because inputs are strictly ascending: a value matched in
// the current block pairing cannot reappear in any later block.

#include "kernels/intersect_common.h"
#include "kernels/kernels.h"

#if defined(CFL_KERNELS_HAVE_AVX2)

#include <immintrin.h>

namespace cfl::kernels::avx2 {

namespace {

using detail::kGallopRatio;

// Lane-compaction shuffle control: for an 8-bit match mask, the lane
// indices of the set bits packed to the front (trailing lanes don't care).
struct CompactTable {
  alignas(32) uint32_t idx[256][8];
  CompactTable() {
    for (int mask = 0; mask < 256; ++mask) {
      int k = 0;
      for (int lane = 0; lane < 8; ++lane) {
        if ((mask & (1 << lane)) != 0) idx[mask][k++] = lane;
      }
      for (; k < 8; ++k) idx[mask][k] = 0;
    }
  }
};

const CompactTable& Table() {
  static const CompactTable table;
  return table;
}

inline __m256i Rotate1(__m256i v) {
  return _mm256_permutevar8x32_epi32(v, _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 0));
}

// Per-lane mask: bit l set iff lane l of `x` equals some lane of `y`.
inline int MatchMask(__m256i x, __m256i y) {
  __m256i m = _mm256_cmpeq_epi32(x, y);
  __m256i r = y;
  for (int k = 1; k < 8; ++k) {
    r = Rotate1(r);
    m = _mm256_or_si256(m, _mm256_cmpeq_epi32(x, r));
  }
  return _mm256_movemask_ps(_mm256_castsi256_ps(m));
}

void MergeValues(std::span<const uint32_t> a, std::span<const uint32_t> b,
                 std::vector<uint32_t>& out) {
  const size_t na = a.size();
  const size_t nb = b.size();
  // Write through a raw cursor with 8 lanes of headroom: each block store
  // writes a full vector, of which only popcount(mask) lanes are kept.
  const size_t base = out.size();
  out.resize(base + (na < nb ? na : nb) + 8);
  uint32_t* dst = out.data() + base;
  size_t i = 0;
  size_t j = 0;
  while (i + 8 <= na && j + 8 <= nb) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a.data() + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b.data() + j));
    const int mask = MatchMask(va, vb);
    const __m256i shuf = _mm256_load_si256(
        reinterpret_cast<const __m256i*>(Table().idx[mask]));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst),
                        _mm256_permutevar8x32_epi32(va, shuf));
    dst += __builtin_popcount(static_cast<unsigned>(mask));
    const uint32_t amax = a[i + 7];
    const uint32_t bmax = b[j + 7];
    if (amax <= bmax) i += 8;
    if (bmax <= amax) j += 8;
  }
  while (i < na && j < nb) {
    const uint32_t x = a[i];
    const uint32_t y = b[j];
    if (x == y) {
      *dst++ = x;
      ++i;
      ++j;
    } else if (x < y) {
      ++i;
    } else {
      ++j;
    }
  }
  out.resize(static_cast<size_t>(dst - out.data()));
}

uint64_t MergeCount(std::span<const uint32_t> a, std::span<const uint32_t> b) {
  const size_t na = a.size();
  const size_t nb = b.size();
  uint64_t count = 0;
  size_t i = 0;
  size_t j = 0;
  while (i + 8 <= na && j + 8 <= nb) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a.data() + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b.data() + j));
    count += __builtin_popcount(static_cast<unsigned>(MatchMask(va, vb)));
    const uint32_t amax = a[i + 7];
    const uint32_t bmax = b[j + 7];
    if (amax <= bmax) i += 8;
    if (bmax <= amax) j += 8;
  }
  while (i < na && j < nb) {
    const uint32_t x = a[i];
    const uint32_t y = b[j];
    if (x == y) {
      ++count;
      ++i;
      ++j;
    } else if (x < y) {
      ++i;
    } else {
      ++j;
    }
  }
  return count;
}

void MergePositions(std::span<const uint32_t> a, std::span<const uint32_t> b,
                    std::vector<uint32_t>& out) {
  const size_t na = a.size();
  const size_t nb = b.size();
  const size_t base = out.size();
  out.resize(base + (na < nb ? na : nb) + 8);
  uint32_t* dst = out.data() + base;
  const __m256i iota = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  size_t i = 0;
  size_t j = 0;
  while (i + 8 <= na && j + 8 <= nb) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a.data() + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b.data() + j));
    // Mask over the *b* lanes: positions are indices into b.
    const int mask = MatchMask(vb, va);
    const __m256i positions =
        _mm256_add_epi32(_mm256_set1_epi32(static_cast<int>(j)), iota);
    const __m256i shuf = _mm256_load_si256(
        reinterpret_cast<const __m256i*>(Table().idx[mask]));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst),
                        _mm256_permutevar8x32_epi32(positions, shuf));
    dst += __builtin_popcount(static_cast<unsigned>(mask));
    const uint32_t amax = a[i + 7];
    const uint32_t bmax = b[j + 7];
    if (amax <= bmax) i += 8;
    if (bmax <= amax) j += 8;
  }
  while (i < na && j < nb) {
    const uint32_t x = a[i];
    const uint32_t y = b[j];
    if (x == y) {
      *dst++ = static_cast<uint32_t>(j);
      ++i;
      ++j;
    } else if (x < y) {
      ++i;
    } else {
      ++j;
    }
  }
  out.resize(static_cast<size_t>(dst - out.data()));
}

}  // namespace

void IntersectSorted(std::span<const uint32_t> a, std::span<const uint32_t> b,
                     std::vector<uint32_t>& out) {
  if (a.empty() || b.empty()) return;
  if (a.size() > b.size() * kGallopRatio) return detail::GallopValues(b, a, out);
  if (b.size() > a.size() * kGallopRatio) return detail::GallopValues(a, b, out);
  MergeValues(a, b, out);
}

uint64_t IntersectCount(std::span<const uint32_t> a,
                        std::span<const uint32_t> b) {
  if (a.empty() || b.empty()) return 0;
  if (a.size() > b.size() * kGallopRatio) return detail::GallopCount(b, a);
  if (b.size() > a.size() * kGallopRatio) return detail::GallopCount(a, b);
  return MergeCount(a, b);
}

void IntersectPositions(std::span<const uint32_t> a,
                        std::span<const uint32_t> b,
                        std::vector<uint32_t>& out) {
  if (a.empty() || b.empty()) return;
  if (a.size() > b.size() * kGallopRatio) {
    return detail::GallopPositionsInSmall(b, a, out);
  }
  if (b.size() > a.size() * kGallopRatio) {
    return detail::GallopPositionsInLarge(a, b, out);
  }
  MergePositions(a, b, out);
}

}  // namespace cfl::kernels::avx2

#endif  // CFL_KERNELS_HAVE_AVX2
