// Scalar reference implementation of the intersection primitives: a plain
// two-pointer merge for balanced inputs plus the shared galloping cutover
// for skewed ones (intersect_common.h). This is the semantics oracle the
// property tests hold every other implementation to, and the dispatch
// target on non-AVX2 hardware and under CFL_FORCE_SCALAR.

#include "kernels/intersect_common.h"
#include "kernels/kernels.h"

namespace cfl::kernels::scalar {

namespace {

using detail::kGallopRatio;

void MergeValues(std::span<const uint32_t> a, std::span<const uint32_t> b,
                 std::vector<uint32_t>& out) {
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    const uint32_t x = a[i];
    const uint32_t y = b[j];
    if (x == y) {
      out.push_back(x);
      ++i;
      ++j;
    } else if (x < y) {
      ++i;
    } else {
      ++j;
    }
  }
}

uint64_t MergeCount(std::span<const uint32_t> a, std::span<const uint32_t> b) {
  uint64_t count = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    const uint32_t x = a[i];
    const uint32_t y = b[j];
    if (x == y) {
      ++count;
      ++i;
      ++j;
    } else if (x < y) {
      ++i;
    } else {
      ++j;
    }
  }
  return count;
}

void MergePositions(std::span<const uint32_t> a, std::span<const uint32_t> b,
                    std::vector<uint32_t>& out) {
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    const uint32_t x = a[i];
    const uint32_t y = b[j];
    if (x == y) {
      out.push_back(static_cast<uint32_t>(j));
      ++i;
      ++j;
    } else if (x < y) {
      ++i;
    } else {
      ++j;
    }
  }
}

}  // namespace

void IntersectSorted(std::span<const uint32_t> a, std::span<const uint32_t> b,
                     std::vector<uint32_t>& out) {
  if (a.empty() || b.empty()) return;
  if (a.size() > b.size() * kGallopRatio) return detail::GallopValues(b, a, out);
  if (b.size() > a.size() * kGallopRatio) return detail::GallopValues(a, b, out);
  MergeValues(a, b, out);
}

uint64_t IntersectCount(std::span<const uint32_t> a,
                        std::span<const uint32_t> b) {
  if (a.empty() || b.empty()) return 0;
  if (a.size() > b.size() * kGallopRatio) return detail::GallopCount(b, a);
  if (b.size() > a.size() * kGallopRatio) return detail::GallopCount(a, b);
  return MergeCount(a, b);
}

void IntersectPositions(std::span<const uint32_t> a,
                        std::span<const uint32_t> b,
                        std::vector<uint32_t>& out) {
  if (a.empty() || b.empty()) return;
  if (a.size() > b.size() * kGallopRatio) {
    return detail::GallopPositionsInSmall(b, a, out);
  }
  if (b.size() > a.size() * kGallopRatio) {
    return detail::GallopPositionsInLarge(a, b, out);
  }
  MergePositions(a, b, out);
}

}  // namespace cfl::kernels::scalar
