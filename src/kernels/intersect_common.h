// Internal helpers shared by the scalar and AVX2 intersection translation
// units: the galloping (exponential + binary) search side of the
// size-adaptive strategy, and the skew cutover constant. Scalar code only —
// this header is compiled both with and without -mavx2 and must behave
// identically either way. Not part of the public kernel API.

#ifndef CFL_KERNELS_INTERSECT_COMMON_H_
#define CFL_KERNELS_INTERSECT_COMMON_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace cfl::kernels::detail {

// Skew cutover: when one input is this many times longer than the other,
// galloping the small side through the large one beats any merge — the
// merge would stream the whole large input, galloping touches O(small·log)
// of it. Below the cutover, block merges win (SIMD when dispatched).
inline constexpr size_t kGallopRatio = 32;

// Smallest index i in [from, n) with arr[i] >= key, found by exponential
// probing from `from` followed by binary search inside the located window.
// O(log(i - from)) — the reason galloping intersections are cheap when the
// matches are clustered near the front.
inline size_t GallopLowerBound(const uint32_t* arr, size_t n, size_t from,
                               uint32_t key) {
  if (from >= n || arr[from] >= key) return from;
  // arr[from] < key: widen (from, from + offset] until it brackets key.
  size_t offset = 1;
  while (from + offset < n && arr[from + offset] < key) offset <<= 1;
  size_t lo = from + offset / 2 + 1;
  size_t hi = from + offset < n ? from + offset : n;
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (arr[mid] < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

// a ∩ b by galloping `small` through `large`, appending the common values.
inline void GallopValues(std::span<const uint32_t> small,
                         std::span<const uint32_t> large,
                         std::vector<uint32_t>& out) {
  size_t base = 0;
  for (const uint32_t x : small) {
    base = GallopLowerBound(large.data(), large.size(), base, x);
    if (base == large.size()) return;
    if (large[base] == x) {
      out.push_back(x);
      ++base;
    }
  }
}

inline uint64_t GallopCount(std::span<const uint32_t> small,
                            std::span<const uint32_t> large) {
  uint64_t count = 0;
  size_t base = 0;
  for (const uint32_t x : small) {
    base = GallopLowerBound(large.data(), large.size(), base, x);
    if (base == large.size()) return count;
    if (large[base] == x) {
      ++count;
      ++base;
    }
  }
  return count;
}

// Positions (indices into `large`) of the common elements, `small` galloped
// through `large`. Used when the position-bearing side is the long one.
inline void GallopPositionsInLarge(std::span<const uint32_t> small,
                                   std::span<const uint32_t> large,
                                   std::vector<uint32_t>& out) {
  size_t base = 0;
  for (const uint32_t x : small) {
    base = GallopLowerBound(large.data(), large.size(), base, x);
    if (base == large.size()) return;
    if (large[base] == x) {
      out.push_back(static_cast<uint32_t>(base));
      ++base;
    }
  }
}

// Positions (indices into `small`) of the common elements, `small` galloped
// through `large`. Used when the position-bearing side is the short one.
inline void GallopPositionsInSmall(std::span<const uint32_t> small,
                                   std::span<const uint32_t> large,
                                   std::vector<uint32_t>& out) {
  size_t base = 0;
  for (size_t j = 0; j < small.size(); ++j) {
    base = GallopLowerBound(large.data(), large.size(), base, small[j]);
    if (base == large.size()) return;
    if (large[base] == small[j]) {
      out.push_back(static_cast<uint32_t>(j));
      ++base;
    }
  }
}

}  // namespace cfl::kernels::detail

#endif  // CFL_KERNELS_INTERSECT_COMMON_H_
