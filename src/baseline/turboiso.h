// TurboISO (Han, Lee, Lee — SIGMOD 2013; paper [8]).
//
// The state-of-the-art baseline the paper compares against. Our
// re-implementation follows the published algorithm:
//
//   1. ChooseStartQueryVertex: argmin |C_ini(u)| / d_q(u) over label+degree
//      filtered candidate counts.
//   2. Query rewriting to an NEC tree: a BFS tree from the start vertex in
//      which degree-one siblings with equal labels (neighborhood equivalence
//      classes) merge into one node, so their permutations are never
//      enumerated redundantly.
//   3. ExploreCR: for each start candidate, a depth-first exploration
//      materializes the candidate region (CR) — per (NEC-tree node, parent
//      data vertex) candidate lists — with label/degree/NLF pruning and
//      failure propagation (a vertex without enough child candidates is
//      dropped).
//   4. Per-region matching order: root-to-leaf paths of the NEC tree ordered
//      by their estimated number of path embeddings in the CR (fewest
//      first), computed by dynamic programming over the CR.
//   5. SubgraphSearch: backtracking over the CR in that order; members of an
//      NEC class are assigned combinations (counted with a k! multiplier)
//      and non-tree edges are validated against the data graph.
//
// Note on fidelity: the original materializes path embeddings lazily and can
// go exponential in space (the CFL paper's Challenge 2); our CR is memoized
// per (node, vertex), so the *space* blowup is avoided while the behavioral
// gap the paper measures — per-region overhead, no core/leaf postponement,
// weaker candidate pruning — is preserved. DESIGN.md discusses this.

#ifndef CFL_BASELINE_TURBOISO_H_
#define CFL_BASELINE_TURBOISO_H_

#include <memory>

#include "graph/graph.h"
#include "match/engine.h"

namespace cfl {

std::unique_ptr<SubgraphEngine> MakeTurboIso(const Graph& data);

}  // namespace cfl

#endif  // CFL_BASELINE_TURBOISO_H_
