// Ullmann's algorithm (J. ACM 1976; paper [19]).
//
// The original backtracking formulation: query vertices are matched in
// their *input order* (no connectivity requirement), each against the full
// label/degree-filtered candidate list, validating every query edge whose
// endpoints are both matched. Included as the historical baseline that the
// connected-order algorithms (VF2/QuickSI) improve on; it demonstrates the
// Cartesian-product blowups the paper's framework eliminates.

#ifndef CFL_BASELINE_ULLMANN_H_
#define CFL_BASELINE_ULLMANN_H_

#include <memory>

#include "graph/graph.h"
#include "match/engine.h"

namespace cfl {

std::unique_ptr<SubgraphEngine> MakeUllmann(const Graph& data);

}  // namespace cfl

#endif  // CFL_BASELINE_ULLMANN_H_
