// QuickSI (Shang, Zhang, Lin, Yu — PVLDB 2008; paper [15]).
//
// QuickSI tames verification cost with a *connected* matching order chosen
// by the infrequent-first heuristic: query edges are weighted by the
// frequency of their label pair among data edges, a minimum spanning tree
// is grown from the lightest edge, and vertices are matched in tree order —
// each new vertex's candidates are the data neighbors of its parent's
// mapping, with all backward edges checked immediately.
//
// The ordering lives in order/quicksi_order.h; this is the matching engine.

#ifndef CFL_BASELINE_QUICKSI_H_
#define CFL_BASELINE_QUICKSI_H_

#include <memory>

#include "graph/graph.h"
#include "match/engine.h"

namespace cfl {

std::unique_ptr<SubgraphEngine> MakeQuickSi(const Graph& data);

}  // namespace cfl

#endif  // CFL_BASELINE_QUICKSI_H_
