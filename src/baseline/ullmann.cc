#include "baseline/ullmann.h"

#include <vector>

#include "match/embedding.h"
#include "obs/clock.h"

namespace cfl {

namespace {

class UllmannEngine : public SubgraphEngine {
 public:
  explicit UllmannEngine(const Graph& data) : data_(data) {}

  std::string_view name() const override { return "Ullmann"; }

  MatchResult Run(const Graph& query, const MatchLimits& limits) override {
    const obs::TimePoint start = obs::Now();
    MatchResult result;
    Deadline deadline(limits.time_limit_seconds);
    const uint32_t n = query.NumVertices();

    // Candidate lists in input order: label + degree filtered.
    std::vector<std::vector<VertexId>> candidates(n);
    for (VertexId u = 0; u < n; ++u) {
      for (VertexId v : data_.VerticesWithLabel(query.label(u))) {
        if (data_.degree(v) >= query.StructuralDegree(u)) {
          candidates[u].push_back(v);
        }
      }
    }

    // Backward edges: for step u, query neighbors with smaller input index.
    std::vector<std::vector<VertexId>> backward(n);
    for (VertexId u = 0; u < n; ++u) {
      for (VertexId w : query.Neighbors(u)) {
        if (w < u) backward[u].push_back(w);
      }
    }

    Embedding mapping(n, kInvalidVertex);
    std::vector<uint32_t> used(data_.NumVertices(), 0);
    std::vector<uint32_t> cursor(n, 0);

    auto unbind = [&](uint32_t d) {
      --used[mapping[d]];
      mapping[d] = kInvalidVertex;
    };

    uint32_t depth = 0;
    cursor[0] = 0;
    bool exhausted = false;
    while (!exhausted) {
      if (deadline.ExpiredCoarse()) {
        result.timed_out = true;
        break;
      }
      bool bound = false;
      while (cursor[depth] < candidates[depth].size()) {
        VertexId v = candidates[depth][cursor[depth]++];
        if (used[v] >= data_.multiplicity(v)) continue;
        bool ok = true;
        for (VertexId w : backward[depth]) {
          if (!data_.HasEdge(mapping[w], v)) {
            ok = false;
            break;
          }
        }
        if (!ok) continue;
        mapping[depth] = v;
        ++used[v];
        bound = true;
        break;
      }
      if (!bound) {
        if (depth == 0) break;
        --depth;
        unbind(depth);
        continue;
      }
      if (depth + 1 == n) {
        result.embeddings = SaturatingAdd(
            result.embeddings, ExpansionFactor(data_, mapping));
        unbind(depth);
        if (result.embeddings >= limits.max_embeddings) {
          result.reached_limit = true;
          break;
        }
        continue;
      }
      ++depth;
      cursor[depth] = 0;
    }

    result.enumerate_seconds = obs::SecondsSince(start);
    result.total_seconds = result.enumerate_seconds;
    CFL_STATS_ONLY({
      result.stats.recorded = true;
      result.stats.enumerate_seconds = result.enumerate_seconds;
      result.stats.embeddings_found = result.embeddings;
    })
    return result;
  }

 private:
  const Graph& data_;
};

}  // namespace

std::unique_ptr<SubgraphEngine> MakeUllmann(const Graph& data) {
  return std::make_unique<UllmannEngine>(data);
}

}  // namespace cfl
