#include "baseline/quicksi.h"

#include <vector>

#include "graph/graph_stats.h"
#include "match/embedding.h"
#include "obs/clock.h"
#include "order/quicksi_order.h"

namespace cfl {

namespace {

class QuickSiEngine : public SubgraphEngine {
 public:
  explicit QuickSiEngine(const Graph& data)
      : data_(data), freq_(data) {}

  std::string_view name() const override { return "QuickSI"; }

  MatchResult Run(const Graph& query, const MatchLimits& limits) override {
    const obs::TimePoint start = obs::Now();
    MatchResult result;
    Deadline deadline(limits.time_limit_seconds);
    const uint32_t n = query.NumVertices();

    // QI-sequence (ordering time, negligible per the paper — it only reads
    // the precomputed frequency table).
    std::vector<QuickSiStep> seq = ComputeQiSequence(query, data_, freq_);
    result.order_seconds = obs::SecondsSince(start);

    Embedding mapping(n, kInvalidVertex);
    std::vector<uint32_t> used(data_.NumVertices(), 0);

    // First vertex iterates the label index; each later vertex iterates the
    // data neighbors of its parent's mapping.
    std::span<const VertexId> root_candidates =
        data_.VerticesWithLabel(query.label(seq[0].u));
    std::vector<uint32_t> cursor(n, 0);

    auto unbind = [&](uint32_t d) {
      --used[mapping[seq[d].u]];
      mapping[seq[d].u] = kInvalidVertex;
    };

    uint32_t depth = 0;
    while (true) {
      if (deadline.ExpiredCoarse()) {
        result.timed_out = true;
        break;
      }
      const QuickSiStep& step = seq[depth];
      std::span<const VertexId> source =
          depth == 0 ? root_candidates
                     : data_.Neighbors(mapping[step.parent]);
      bool bound = false;
      while (cursor[depth] < source.size()) {
        VertexId v = source[cursor[depth]++];
        if (data_.label(v) != query.label(step.u)) continue;
        if (data_.degree(v) < query.StructuralDegree(step.u)) continue;
        if (used[v] >= data_.multiplicity(v)) continue;
        bool ok = true;
        for (VertexId w : step.backward) {
          if (!data_.HasEdge(mapping[w], v)) {
            ok = false;
            break;
          }
        }
        if (!ok) continue;
        mapping[step.u] = v;
        ++used[v];
        bound = true;
        break;
      }
      if (!bound) {
        if (depth == 0) break;
        --depth;
        unbind(depth);
        continue;
      }
      if (depth + 1 == n) {
        result.embeddings = SaturatingAdd(result.embeddings,
                                          ExpansionFactor(data_, mapping));
        unbind(depth);
        if (result.embeddings >= limits.max_embeddings) {
          result.reached_limit = true;
          break;
        }
        continue;
      }
      ++depth;
      cursor[depth] = 0;
    }

    result.total_seconds = obs::SecondsSince(start);
    result.enumerate_seconds = result.total_seconds - result.order_seconds;
    CFL_STATS_ONLY({
      result.stats.recorded = true;
      result.stats.order_seconds = result.order_seconds;
      result.stats.enumerate_seconds = result.enumerate_seconds;
      result.stats.embeddings_found = result.embeddings;
    })
    return result;
  }

 private:
  const Graph& data_;
  LabelPairFrequency freq_;
};

}  // namespace

std::unique_ptr<SubgraphEngine> MakeQuickSi(const Graph& data) {
  return std::make_unique<QuickSiEngine>(data);
}

}  // namespace cfl
