#include "baseline/turboiso.h"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <vector>

#include "cpi/candidate_filter.h"
#include "match/embedding.h"
#include "obs/clock.h"

namespace cfl {

namespace {

// NLF filter as used by TurboISO (label/degree are checked separately).
bool NlfOk(const Graph& q, VertexId u, const Graph& data, VertexId v) {
  for (const Graph::LabelCount& need : q.NeighborLabelCounts(u)) {
    if (data.NeighborLabelCount(v, need.label) < need.count) return false;
  }
  return true;
}

// One node of the rewritten query (NEC tree): a BFS-tree node whose members
// are NEC-equivalent query vertices (>1 member only for merged degree-one
// siblings with equal labels).
struct NecNode {
  std::vector<VertexId> members;
  VertexId rep = kInvalidVertex;  // members.front()
  Label label = 0;
  uint32_t parent = kInvalidVertex;  // node index
  std::vector<uint32_t> children;
};

// One backtracking step of SubgraphSearch: a single query vertex, possibly
// the i-th member of an NEC node.
struct SearchStep {
  uint32_t node = 0;
  VertexId u = kInvalidVertex;
  uint32_t group_rank = 0;           // index within the node's members
  VertexId parent_vertex = kInvalidVertex;  // query vertex the CR hangs off
  std::vector<VertexId> backward;    // non-tree edges to earlier steps
};

class TurboIsoEngine : public SubgraphEngine {
 public:
  explicit TurboIsoEngine(const Graph& data)
      : data_(data), index_(data) {}

  std::string_view name() const override { return "TurboISO"; }

  MatchResult Run(const Graph& query, const MatchLimits& limits) override;

 private:
  using CrKey = uint64_t;  // (node index << 32) | data vertex
  static CrKey Key(uint32_t node, VertexId v) {
    return (static_cast<uint64_t>(node) << 32) | v;
  }

  // ExploreCR with memoization; fills cr_ for (child, v) pairs.
  bool Explore(const Graph& q, uint32_t node, VertexId v);

  // Estimated number of (tree) embeddings of the subtree rooted at `node`
  // when mapped to v, by DP over the CR.
  double SubtreeCount(uint32_t node, VertexId v);

  const Graph& data_;
  LabelDegreeIndex index_;

  // Per-query state.
  std::vector<NecNode> nodes_;
  std::vector<uint32_t> node_of_;  // query vertex -> node index

  // Per-region state.
  std::unordered_map<CrKey, std::vector<VertexId>> cr_;
  std::unordered_map<CrKey, int8_t> explore_memo_;
  std::unordered_map<CrKey, double> count_memo_;
};

bool TurboIsoEngine::Explore(const Graph& q, uint32_t node, VertexId v) {
  auto memo = explore_memo_.find(Key(node, v));
  if (memo != explore_memo_.end()) return memo->second != 0;

  bool ok = true;
  // Gather candidates per child; fail (and roll back) if any child cannot
  // supply enough distinct data vertices for its NEC members.
  std::vector<std::pair<uint32_t, std::vector<VertexId>>> pending;
  for (uint32_t child : nodes_[node].children) {
    const NecNode& c = nodes_[child];
    std::vector<VertexId> cands;
    for (VertexId w : data_.Neighbors(v)) {
      if (data_.label(w) != c.label) continue;
      if (data_.degree(w) < q.StructuralDegree(c.rep)) continue;
      if (!NlfOk(q, c.rep, data_, w)) continue;
      if (!Explore(q, child, w)) continue;
      cands.push_back(w);
    }
    uint64_t capacity = 0;
    for (VertexId w : cands) capacity += data_.multiplicity(w);
    if (capacity < c.members.size()) {
      ok = false;
      break;
    }
    pending.emplace_back(child, std::move(cands));
  }
  if (ok) {
    for (auto& [child, cands] : pending) {
      cr_.emplace(Key(child, v), std::move(cands));
    }
  }
  explore_memo_[Key(node, v)] = ok ? 1 : 0;
  return ok;
}

double TurboIsoEngine::SubtreeCount(uint32_t node, VertexId v) {
  auto memo = count_memo_.find(Key(node, v));
  if (memo != count_memo_.end()) return memo->second;
  double total = 1.0;
  for (uint32_t child : nodes_[node].children) {
    auto it = cr_.find(Key(child, v));
    double sum = 0.0;
    if (it != cr_.end()) {
      for (VertexId w : it->second) sum += SubtreeCount(child, w);
    }
    total *= sum;
  }
  count_memo_[Key(node, v)] = total;
  return total;
}

MatchResult TurboIsoEngine::Run(const Graph& query, const MatchLimits& limits) {
  const obs::TimePoint t_start = obs::Now();
  MatchResult result;
  Deadline deadline(limits.time_limit_seconds);
  const uint32_t n = query.NumVertices();

  // --- 1. ChooseStartQueryVertex ----------------------------------------
  VertexId start = 0;
  double best_rank = std::numeric_limits<double>::infinity();
  for (VertexId u = 0; u < n; ++u) {
    double cands = static_cast<double>(
        index_.CountAtLeast(query.label(u), query.StructuralDegree(u)));
    double rank = cands / std::max<uint32_t>(1, query.StructuralDegree(u));
    if (rank < best_rank) {
      best_rank = rank;
      start = u;
    }
  }

  // --- 2. Rewrite to the NEC tree ----------------------------------------
  nodes_.clear();
  node_of_.assign(n, kInvalidVertex);
  {
    // BFS from start.
    std::vector<VertexId> order;
    std::vector<VertexId> parent(n, kInvalidVertex);
    std::vector<bool> seen(n, false);
    order.push_back(start);
    seen[start] = true;
    for (uint32_t head = 0; head < order.size(); ++head) {
      for (VertexId w : query.Neighbors(order[head])) {
        if (!seen[w]) {
          seen[w] = true;
          parent[w] = order[head];
          order.push_back(w);
        }
      }
    }
    // Nodes: merge degree-one siblings with equal labels; everything else
    // is a singleton node. Parent nodes are created before children since
    // `order` is BFS order.
    for (VertexId u : order) {
      if (node_of_[u] != kInvalidVertex) continue;
      NecNode node;
      node.members.push_back(u);
      node.rep = u;
      node.label = query.label(u);
      if (parent[u] != kInvalidVertex) {
        node.parent = node_of_[parent[u]];
        // Merge with later degree-one same-label siblings.
        if (query.StructuralDegree(u) == 1) {
          for (VertexId s : query.Neighbors(parent[u])) {
            if (s != u && parent[s] == parent[u] &&
                query.StructuralDegree(s) == 1 &&
                query.label(s) == query.label(u) &&
                node_of_[s] == kInvalidVertex) {
              node.members.push_back(s);
            }
          }
        }
      }
      uint32_t idx = static_cast<uint32_t>(nodes_.size());
      for (VertexId m : node.members) node_of_[m] = idx;
      if (node.parent != kInvalidVertex) nodes_[node.parent].children.push_back(idx);
      nodes_.push_back(std::move(node));
    }

    // Non-tree edges (on original vertices) are validated during search via
    // each step's backward list, built after ordering.
    (void)parent;
  }

  // k! multiplier for NEC combinations (plain data graphs only).
  uint64_t nec_factor = 1;
  for (const NecNode& node : nodes_) {
    for (uint64_t k = 2; k <= node.members.size(); ++k) {
      nec_factor = SaturatingMul(nec_factor, k);
    }
  }
  const bool compressed = data_.HasMultiplicities();

  // Root-to-leaf node paths of the NEC tree (shared by all regions).
  std::vector<std::vector<uint32_t>> node_paths;
  {
    std::vector<uint32_t> path;
    std::vector<std::pair<uint32_t, uint32_t>> stack = {{0u, 0u}};
    while (!stack.empty()) {
      auto [nd, depth] = stack.back();
      stack.pop_back();
      path.resize(depth);
      path.push_back(nd);
      if (nodes_[nd].children.empty()) {
        node_paths.push_back(path);
      } else {
        for (auto it = nodes_[nd].children.rbegin();
             it != nodes_[nd].children.rend(); ++it) {
          stack.emplace_back(*it, depth + 1);
        }
      }
    }
  }

  double explore_order_seconds = 0.0;
  double search_seconds = 0.0;

  // --- 3..5: per-region explore, order, search ---------------------------
  Embedding mapping(n, kInvalidVertex);
  std::vector<uint32_t> used(data_.NumVertices(), 0);

  const NecNode& root = nodes_[0];
  for (VertexId vs : data_.VerticesWithLabel(root.label)) {
    if (deadline.Expired()) {
      result.timed_out = true;
      break;
    }
    if (data_.degree(vs) < query.StructuralDegree(root.rep)) continue;
    if (!NlfOk(query, root.rep, data_, vs)) continue;

    const obs::TimePoint t_region = obs::Now();
    cr_.clear();
    explore_memo_.clear();
    count_memo_.clear();
    if (!Explore(query, 0, vs)) {
      explore_order_seconds += obs::SecondsSince(t_region);
      continue;
    }
    for (const auto& [key, cands] : cr_) result.index_entries += cands.size();

    // Per-region matching order: paths with fewer estimated embeddings
    // first; the node sequence is paths concatenated minus shared prefixes.
    std::vector<std::pair<double, uint32_t>> ranked;
    for (uint32_t p = 0; p < node_paths.size(); ++p) {
      // Path cardinality = product of per-level candidate means; use the
      // subtree DP restricted to the path's leaf for a cheap proxy:
      // c(path) ~ subtree count at root restricted to that branch. We use
      // the exact DP count of the path: product over path edges of average
      // fan-out, computed by a per-path DP over the CR.
      const std::vector<uint32_t>& path = node_paths[p];
      std::unordered_map<VertexId, double> counts;
      counts[vs] = 1.0;
      double total = 1.0;
      for (size_t i = 1; i < path.size(); ++i) {
        std::unordered_map<VertexId, double> next;
        for (const auto& [v, c] : counts) {
          auto it = cr_.find(Key(path[i], v));
          if (it == cr_.end()) continue;
          for (VertexId w : it->second) next[w] += c;
        }
        counts = std::move(next);
      }
      total = 0.0;
      for (const auto& [v, c] : counts) total += c;
      ranked.emplace_back(total, p);
    }
    std::sort(ranked.begin(), ranked.end());

    std::vector<uint32_t> node_order;
    std::vector<bool> node_placed(nodes_.size(), false);
    for (const auto& [cnt, p] : ranked) {
      for (uint32_t nd : node_paths[p]) {
        if (!node_placed[nd]) {
          node_placed[nd] = true;
          node_order.push_back(nd);
        }
      }
    }

    // Flatten to per-vertex steps with backward non-tree edges.
    std::vector<SearchStep> steps;
    std::vector<bool> placed(n, false);
    for (uint32_t nd : node_order) {
      const NecNode& node = nodes_[nd];
      for (uint32_t r = 0; r < node.members.size(); ++r) {
        SearchStep step;
        step.node = nd;
        step.u = node.members[r];
        step.group_rank = r;
        step.parent_vertex = (node.parent == kInvalidVertex)
                                 ? kInvalidVertex
                                 : nodes_[node.parent].rep;
        VertexId tree_parent = step.parent_vertex;
        for (VertexId w : query.Neighbors(step.u)) {
          if (placed[w] && w != tree_parent) step.backward.push_back(w);
        }
        placed[step.u] = true;
        steps.push_back(std::move(step));
      }
    }

    explore_order_seconds += obs::SecondsSince(t_region);
    const obs::TimePoint t_search = obs::Now();

    // SubgraphSearch.
    std::vector<uint32_t> cursor(steps.size(), 0);
    std::vector<uint32_t> chosen(steps.size(), 0);
    size_t depth = 0;
    cursor[0] = 0;
    bool region_done = false;
    while (!region_done) {
      if (deadline.ExpiredCoarse()) {
        result.timed_out = true;
        break;
      }
      const SearchStep& step = steps[depth];
      const std::vector<VertexId>* source = nullptr;
      std::vector<VertexId> root_source;
      if (step.parent_vertex == kInvalidVertex) {
        root_source.push_back(vs);
        source = &root_source;
      } else {
        auto it = cr_.find(Key(step.node, mapping[step.parent_vertex]));
        source = (it != cr_.end()) ? &it->second : &root_source;  // empty
      }
      // Combination constraint: later members of a plain-graph NEC group
      // must pick strictly later positions than the previous member.
      if (!compressed && step.group_rank > 0 && cursor[depth] == 0) {
        cursor[depth] = chosen[depth - 1] + 1;
      }

      bool bound = false;
      while (cursor[depth] < source->size()) {
        uint32_t idx = cursor[depth]++;
        VertexId v = (*source)[idx];
        if (used[v] >= data_.multiplicity(v)) continue;
        bool ok = true;
        for (VertexId w : step.backward) {
          if (!data_.HasEdge(mapping[w], v)) {
            ok = false;
            break;
          }
        }
        if (!ok) continue;
        mapping[step.u] = v;
        ++used[v];
        chosen[depth] = idx;
        bound = true;
        break;
      }
      if (!bound) {
        if (depth == 0) {
          region_done = true;
          break;
        }
        --depth;
        --used[mapping[steps[depth].u]];
        mapping[steps[depth].u] = kInvalidVertex;
        continue;
      }
      if (depth + 1 == steps.size()) {
        uint64_t add =
            compressed ? ExpansionFactor(data_, mapping) : nec_factor;
        result.embeddings = SaturatingAdd(result.embeddings, add);
        --used[mapping[step.u]];
        mapping[step.u] = kInvalidVertex;
        if (result.embeddings >= limits.max_embeddings) {
          result.reached_limit = true;
          break;
        }
        continue;
      }
      ++depth;
      cursor[depth] = 0;
    }
    // Unwind any leftover bindings.
    for (VertexId u = 0; u < n; ++u) {
      if (mapping[u] != kInvalidVertex) {
        --used[mapping[u]];
        mapping[u] = kInvalidVertex;
      }
    }
    search_seconds += obs::SecondsSince(t_search);

    if (result.timed_out || result.reached_limit) break;
  }

  result.order_seconds = explore_order_seconds;
  result.enumerate_seconds = search_seconds;
  result.total_seconds = obs::SecondsSince(t_start);
  CFL_STATS_ONLY({
    result.stats.recorded = true;
    result.stats.order_seconds = result.order_seconds;
    result.stats.enumerate_seconds = result.enumerate_seconds;
    result.stats.embeddings_found = result.embeddings;
  })
  return result;
}

}  // namespace

std::unique_ptr<SubgraphEngine> MakeTurboIso(const Graph& data) {
  return std::make_unique<TurboIsoEngine>(data);
}

}  // namespace cfl
