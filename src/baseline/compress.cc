#include "baseline/compress.h"

#include <algorithm>
#include <unordered_map>

#include "baseline/turboiso.h"
#include "graph/graph_builder.h"
#include "match/cfl_match.h"

namespace cfl {

namespace {

// 64-bit FNV-style combine over a label and a sorted vertex list.
uint64_t HashKey(Label label, const std::vector<VertexId>& sorted) {
  uint64_t h = 1469598103934665603ull ^ label;
  for (VertexId v : sorted) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  }
  return h;
}

// Compresses the subgraph of `g` induced by vertices with keep[v] == true.
CompressedGraph CompressKept(const Graph& g, const std::vector<bool>& keep) {
  CompressedGraph out;
  out.original_vertices = 0;
  out.class_of.assign(g.NumVertices(), kInvalidVertex);

  // Bucket kept vertices by (label, kept-neighborhood) — first the
  // non-adjacent-twin key N(v), then, for still-singleton vertices, the
  // adjacent-twin key N(v) u {v}. Hash buckets are verified by comparing
  // the actual key to rule out collisions.
  struct Bucket {
    std::vector<VertexId> key;
    Label label;
    std::vector<VertexId> members;
  };
  auto bucketize = [&](const std::vector<VertexId>& vertices,
                       bool include_self) {
    std::unordered_map<uint64_t, std::vector<Bucket>> buckets;
    for (VertexId v : vertices) {
      std::vector<VertexId> key;
      for (VertexId w : g.Neighbors(v)) {
        if (keep[w]) key.push_back(w);
      }
      if (include_self) {
        // Keep the key in the adjacency's (label, id) order so set equality
        // stays equivalent to sequence equality.
        key.insert(std::lower_bound(key.begin(), key.end(), v,
                                    [&](VertexId a, VertexId b) {
                                      return g.label(a) < g.label(b) ||
                                             (g.label(a) == g.label(b) &&
                                              a < b);
                                    }),
                   v);
      }
      uint64_t h = HashKey(g.label(v), key);
      std::vector<Bucket>& slot = buckets[h];
      bool placed = false;
      for (Bucket& b : slot) {
        if (b.label == g.label(v) && b.key == key) {
          b.members.push_back(v);
          placed = true;
          break;
        }
      }
      if (!placed) slot.push_back({std::move(key), g.label(v), {v}});
    }
    return buckets;
  };

  std::vector<VertexId> kept;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    if (keep[v]) kept.push_back(v);
  }
  out.original_vertices = kept.size();

  // Pass 1: non-adjacent twins. For adjacent twins, N(v) differs between
  // members (each contains the other), so the include_self pass below
  // catches them among the leftovers.
  std::vector<std::vector<VertexId>> classes;
  std::vector<VertexId> singletons;
  for (auto& [h, slot] : bucketize(kept, /*include_self=*/false)) {
    for (Bucket& b : slot) {
      if (b.members.size() > 1) {
        classes.push_back(std::move(b.members));
      } else {
        singletons.push_back(b.members.front());
      }
    }
  }
  // Pass 2: adjacent twins among the leftovers.
  for (auto& [h, slot] : bucketize(singletons, /*include_self=*/true)) {
    for (Bucket& b : slot) classes.push_back(std::move(b.members));
  }
  // Deterministic hypervertex numbering.
  for (std::vector<VertexId>& c : classes) std::sort(c.begin(), c.end());
  std::sort(classes.begin(), classes.end(),
            [](const std::vector<VertexId>& a, const std::vector<VertexId>& b) {
              return a.front() < b.front();
            });

  GraphBuilder builder(static_cast<uint32_t>(classes.size()));
  builder.AllowSelfLoops();
  std::vector<uint32_t> multiplicity(classes.size());
  for (uint32_t c = 0; c < classes.size(); ++c) {
    builder.SetLabel(c, g.label(classes[c].front()));
    multiplicity[c] = static_cast<uint32_t>(classes[c].size());
    for (VertexId v : classes[c]) out.class_of[v] = c;
  }
  builder.SetMultiplicities(std::move(multiplicity));

  // Project original edges; duplicates coalesce in the builder. Mutually
  // adjacent class members project to a self-loop.
  for (VertexId v : kept) {
    for (VertexId w : g.Neighbors(v)) {
      if (w < v || !keep[w]) continue;
      builder.AddEdge(out.class_of[v], out.class_of[w]);
    }
  }
  out.graph = std::move(builder).Build();
  return out;
}

class BoostedEngine : public SubgraphEngine {
 public:
  enum class Inner { kCflMatch, kTurboIso };

  // The data graph is SE-compressed once, offline, as in [14]; per query the
  // inner engine runs on the compressed graph, paying the capacity-check and
  // expansion-factor machinery. On graphs that barely compress that
  // machinery is pure overhead (the paper's Figure 13 HPRD result); on
  // twin-rich graphs like Human the smaller graph wins.
  BoostedEngine(const Graph& data, Inner inner)
      : compressed_(CompressBySE(data)),
        name_(inner == Inner::kCflMatch ? "CFL-Match-Boost"
                                        : "TurboISO-Boost"),
        engine_(inner == Inner::kCflMatch ? MakeCflMatch(compressed_.graph)
                                          : MakeTurboIso(compressed_.graph)) {}

  std::string_view name() const override { return name_; }

  MatchResult Run(const Graph& query, const MatchLimits& limits) override {
    return engine_->Run(query, limits);
  }

  double compression_ratio() const { return compressed_.CompressionRatio(); }

 private:
  CompressedGraph compressed_;
  std::string name_;
  std::unique_ptr<SubgraphEngine> engine_;
};

}  // namespace

CompressedGraph CompressBySE(const Graph& g) {
  return CompressKept(g, std::vector<bool>(g.NumVertices(), true));
}

CompressedGraph CompressForQuery(const Graph& g, const Graph& q) {
  std::vector<bool> label_in_query;
  for (VertexId u = 0; u < q.NumVertices(); ++u) {
    if (q.label(u) >= label_in_query.size()) {
      label_in_query.resize(q.label(u) + 1, false);
    }
    label_in_query[q.label(u)] = true;
  }
  std::vector<bool> keep(g.NumVertices(), false);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    keep[v] = g.label(v) < label_in_query.size() && label_in_query[g.label(v)];
  }
  return CompressKept(g, keep);
}

std::unique_ptr<SubgraphEngine> MakeCflMatchBoost(const Graph& data) {
  return std::make_unique<BoostedEngine>(data, BoostedEngine::Inner::kCflMatch);
}

std::unique_ptr<SubgraphEngine> MakeTurboIsoBoost(const Graph& data) {
  return std::make_unique<BoostedEngine>(data, BoostedEngine::Inner::kTurboIso);
}

}  // namespace cfl
