#include "baseline/vf2.h"

#include <vector>

#include "match/embedding.h"
#include "obs/clock.h"

namespace cfl {

namespace {

class Vf2Engine : public SubgraphEngine {
 public:
  explicit Vf2Engine(const Graph& data) : data_(data) {}

  std::string_view name() const override { return "VF2"; }

  MatchResult Run(const Graph& query, const MatchLimits& limits) override {
    const obs::TimePoint start = obs::Now();
    MatchResult result;
    Deadline deadline(limits.time_limit_seconds);
    const uint32_t n = query.NumVertices();

    // Connected exploration order (BFS from vertex 0) with spanning parents
    // — VF2 grows the mapping only through the terminal set.
    std::vector<VertexId> order;
    std::vector<VertexId> parent(n, kInvalidVertex);
    {
      std::vector<bool> seen(n, false);
      order.push_back(0);
      seen[0] = true;
      for (uint32_t head = 0; head < order.size(); ++head) {
        for (VertexId w : query.Neighbors(order[head])) {
          if (!seen[w]) {
            seen[w] = true;
            parent[w] = order[head];
            order.push_back(w);
          }
        }
      }
    }
    // Backward consistency edges and per-depth unmatched-neighbor counts
    // (the 1-lookahead bound).
    std::vector<std::vector<VertexId>> backward(n);
    std::vector<uint32_t> unmatched_neighbors(n, 0);
    {
      std::vector<uint32_t> pos(n, 0);
      for (uint32_t i = 0; i < n; ++i) pos[order[i]] = i;
      for (uint32_t i = 0; i < n; ++i) {
        VertexId u = order[i];
        for (VertexId w : query.Neighbors(u)) {
          if (pos[w] < i && w != parent[u]) backward[i].push_back(w);
          if (pos[w] > i) ++unmatched_neighbors[i];
        }
      }
    }

    Embedding mapping(n, kInvalidVertex);
    std::vector<uint32_t> used(data_.NumVertices(), 0);
    std::vector<uint32_t> cursor(n, 0);
    std::span<const VertexId> roots =
        data_.VerticesWithLabel(query.label(order[0]));

    // 1-lookahead: v must still offer enough free adjacent capacity for u's
    // not-yet-matched neighbors.
    auto lookahead_ok = [&](uint32_t depth, VertexId v) {
      uint64_t free_capacity = 0;
      const uint64_t needed = unmatched_neighbors[depth];
      for (VertexId w : data_.Neighbors(v)) {
        uint32_t cap = data_.multiplicity(w);
        free_capacity += (used[w] < cap) ? cap - used[w] : 0;
        if (free_capacity >= needed) return true;
      }
      return free_capacity >= needed;
    };

    auto unbind = [&](uint32_t d) {
      --used[mapping[order[d]]];
      mapping[order[d]] = kInvalidVertex;
    };

    uint32_t depth = 0;
    while (true) {
      if (deadline.ExpiredCoarse()) {
        result.timed_out = true;
        break;
      }
      VertexId u = order[depth];
      std::span<const VertexId> source =
          depth == 0 ? roots : data_.Neighbors(mapping[parent[u]]);
      bool bound = false;
      while (cursor[depth] < source.size()) {
        VertexId v = source[cursor[depth]++];
        if (data_.label(v) != query.label(u)) continue;
        if (used[v] >= data_.multiplicity(v)) continue;
        bool ok = true;
        for (VertexId w : backward[depth]) {
          if (!data_.HasEdge(mapping[w], v)) {
            ok = false;
            break;
          }
        }
        if (!ok || !lookahead_ok(depth, v)) continue;
        mapping[u] = v;
        ++used[v];
        bound = true;
        break;
      }
      if (!bound) {
        if (depth == 0) break;
        --depth;
        unbind(depth);
        continue;
      }
      if (depth + 1 == n) {
        result.embeddings = SaturatingAdd(result.embeddings,
                                          ExpansionFactor(data_, mapping));
        unbind(depth);
        if (result.embeddings >= limits.max_embeddings) {
          result.reached_limit = true;
          break;
        }
        continue;
      }
      ++depth;
      cursor[depth] = 0;
    }

    result.total_seconds = obs::SecondsSince(start);
    result.enumerate_seconds = result.total_seconds;
    CFL_STATS_ONLY({
      result.stats.recorded = true;
      result.stats.enumerate_seconds = result.enumerate_seconds;
      result.stats.embeddings_found = result.embeddings;
    })
    return result;
  }

 private:
  const Graph& data_;
};

}  // namespace

std::unique_ptr<SubgraphEngine> MakeVf2(const Graph& data) {
  return std::make_unique<Vf2Engine>(data);
}

}  // namespace cfl
