// VF2 (Cordella, Foggia, Sansone, Vento — TPAMI 2004; paper [4]).
//
// The classic connected-order baseline: the partial mapping grows only
// through vertices adjacent to it (the "terminal sets"), and each candidate
// pair is validated by consistency plus one-step lookahead — the number of
// terminal/unexplored neighbors of the query vertex must not exceed those of
// the data vertex. VF2 predates the ordering and indexing ideas that
// QuickSI/TurboISO/CFL-Match add; it is included to ground the evaluation's
// baseline end.

#ifndef CFL_BASELINE_VF2_H_
#define CFL_BASELINE_VF2_H_

#include <memory>

#include "graph/graph.h"
#include "match/engine.h"

namespace cfl {

std::unique_ptr<SubgraphEngine> MakeVf2(const Graph& data);

}  // namespace cfl

#endif  // CFL_BASELINE_VF2_H_
