// Data-graph compression by vertex-relationship merging (Ren & Wang,
// PVLDB 2015; paper [14]) — the "Boost" of TurboISO-Boost / CFL-Match-Boost.
//
// Vertices with the same label and identical neighborhoods merge into one
// hypervertex carrying a multiplicity:
//   * non-adjacent twins: N(u) == N(v)            (no self-loop), and
//   * adjacent twins:     N(u) u {u} == N(v) u {v} (clique class, self-loop).
//
// Because members of a class have exactly the same adjacency, matching on
// the compressed graph with capacity-based injectivity (used[v] <
// multiplicity(v)) is *exact*: each compressed embedding expands to
// ExpansionFactor(...) ordered member assignments. Every engine in this
// repository already supports that protocol, so "boosting" any engine is
// just running it on the compressed graph.
//
// `CompressForQuery` additionally drops vertices whose label does not occur
// in the query before compressing — a query-dependent reduction (sound
// because no embedding can touch a label the query lacks). This is the
// per-query overhead the paper's Figure 13 attributes to the boost
// technique: on graphs that compress poorly (HPRD, < 5%), the overhead
// outweighs the gain; on Human (~40%) it pays off.

#ifndef CFL_BASELINE_COMPRESS_H_
#define CFL_BASELINE_COMPRESS_H_

#include <memory>
#include <vector>

#include "graph/graph.h"
#include "match/engine.h"

namespace cfl {

struct CompressedGraph {
  Graph graph;  // hypervertices; multiplicities; self-loops on clique classes

  // original vertex id -> hypervertex id (kInvalidVertex if the original
  // vertex was dropped by the query-label restriction).
  std::vector<VertexId> class_of;

  uint64_t original_vertices = 0;

  // The paper's compression-ratio metric: fraction of vertices removed.
  double CompressionRatio() const {
    if (original_vertices == 0) return 0.0;
    return 1.0 - static_cast<double>(graph.NumVertices()) /
                     static_cast<double>(original_vertices);
  }
};

// Structural-equivalence compression of the whole graph.
CompressedGraph CompressBySE(const Graph& g);

// Query-dependent variant: restrict to the query's labels, then compress.
CompressedGraph CompressForQuery(const Graph& g, const Graph& q);

// Boosted engines: per query, run CompressForQuery and execute the inner
// engine on the compressed graph. Names: "CFL-Match-Boost",
// "TurboISO-Boost".
std::unique_ptr<SubgraphEngine> MakeCflMatchBoost(const Graph& data);
std::unique_ptr<SubgraphEngine> MakeTurboIsoBoost(const Graph& data);

}  // namespace cfl

#endif  // CFL_BASELINE_COMPRESS_H_
