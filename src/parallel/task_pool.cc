#include "parallel/task_pool.h"

#include <exception>
#include <utility>

#include "check/check.h"
#include "check/narrow.h"

namespace cfl {

TaskPool::TaskPool(uint32_t threads) : size_(threads == 0 ? 1 : threads) {
  workers_.reserve(size_);
  for (uint32_t id = 0; id < size_; ++id) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

TaskPool::~TaskPool() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  task_ready_.NotifyAll();
  for (std::thread& t : workers_) t.join();
}

void TaskPool::InvokeTask(const std::function<void()>& task) noexcept {
  // Fail fast with the message instead of letting the exception escape the
  // worker thread (std::terminate with no context); same boundary as
  // ThreadPool::InvokeBody.
  try {
    task();
  } catch (const std::exception& e) {
    CFL_CHECK(false) << " — TaskPool task threw: " << e.what();
  } catch (...) {
    CFL_CHECK(false) << " — TaskPool task threw a non-std::exception";
  }
}

void TaskPool::Submit(std::function<void()> task) {
  CFL_CHECK(task != nullptr);
  {
    MutexLock lock(mu_);
    CFL_CHECK(!shutdown_) << " — Submit after TaskPool shutdown";
    queue_.push_back(std::move(task));
  }
  task_ready_.NotifyOne();
}

uint32_t TaskPool::PendingTasks() {
  MutexLock lock(mu_);
  return CheckedU32(queue_.size()) + in_flight_;
}

void TaskPool::WorkerLoop() noexcept {
  while (true) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      // cfl-analyze: allow(blocking-under-lock) idle wait releases mu_
      while (queue_.empty() && !shutdown_) task_ready_.Wait(mu_);
      // Drain-on-shutdown: exit only once the queue is empty, so every
      // submitted task runs and latch waiters cannot be stranded.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    InvokeTask(task);
    {
      MutexLock lock(mu_);
      --in_flight_;
    }
  }
}

void TaskLatch::CountDown() {
  // The broadcast stays under mu_ on purpose: a Wait-er must reacquire mu_
  // before it can return and destroy the latch, so holding the lock across
  // NotifyAll is what makes destroy-after-Wait safe.
  MutexLock lock(mu_);
  CFL_CHECK(remaining_ > 0) << " — TaskLatch counted below zero";
  if (--remaining_ == 0) done_.NotifyAll();
}

void TaskLatch::Wait() {
  MutexLock lock(mu_);
  // cfl-analyze: allow(blocking-under-lock) latch barrier: Wait releases mu_
  while (remaining_ != 0) done_.Wait(mu_);
}

}  // namespace cfl
