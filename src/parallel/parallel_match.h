// Parallel CFL-Match: root-partitioned enumeration over a shared CPI.
//
// The CPI decomposes the search space by root candidate: the subtree of
// embeddings reachable from root candidate position r is independent of
// every other root candidate (Algorithm 5 backtracks to the root between
// them and never carries state across). That makes root positions a
// perfect parallel work unit — the CPI, matching order, and data graph
// are built once and shared *immutably* by reference, while everything
// enumeration mutates (EnumeratorState, LeafMatcher scratch, Deadline
// tick cache) is private to a worker.
//
// Work distribution is a work-stealing claim counter: workers grab the
// next unclaimed root position from a shared atomic cursor, so a skewed
// root (one candidate hosting most of the search space) only pins the one
// worker that claimed it while the rest drain the remaining roots.
//
// Early-stop semantics match the serial engine's MatchLimits contract:
//   * max_embeddings — a shared atomic running count; the worker whose
//     visit crosses the cap raises a stop flag all workers poll. Like the
//     serial engine, the final count may overshoot the cap by the last
//     visit's leaf-product; counts are exact whenever the cap is not hit.
//   * time_limit_seconds — one deadline instant fixed before the fork;
//     each worker polls a private copy (same expiry, private coarse-tick
//     cache), so all workers cut off at the same wall-clock moment.
//
// Counts and effort counters are merged deterministically at the join
// barrier (per-worker partials summed in worker order). Without a cap or
// deadline hit the total is the exact embedding count, identical at any
// thread count, because the root ranges partition the search space.
//
// Concurrency contracts are machine-checked: the shared structures (Graph,
// Cpi, PreparedQuery) carry CFL_IMMUTABLE_AFTER_BUILD, everything shared
// and mutable during a Run is a std::atomic, and the pool's own fields are
// CFL_GUARDED_BY its mutex — Clang Thread Safety Analysis plus
// tools/cfl_lint enforce all three (check/thread_annotations.h).

#ifndef CFL_PARALLEL_PARALLEL_MATCH_H_
#define CFL_PARALLEL_PARALLEL_MATCH_H_

#include <cstdint>
#include <memory>

#include "graph/graph.h"
#include "match/cfl_match.h"
#include "match/engine.h"
#include "parallel/thread_pool.h"

namespace cfl {

class ParallelCflMatcher {
 public:
  // `threads` == 0 is clamped to 1; 1 runs inline on the caller (no worker
  // threads), making the single-threaded configuration genuinely serial.
  ParallelCflMatcher(const Graph& data, uint32_t threads);

  ParallelCflMatcher(const ParallelCflMatcher&) = delete;
  ParallelCflMatcher& operator=(const ParallelCflMatcher&) = delete;

  const Graph& data() const { return serial_.data(); }
  uint32_t threads() const { return pool_.size(); }

  // Same contract as CflMatcher::Match. Counting mode (no on_embedding
  // callback) is parallelized; enumeration mode falls back to the serial
  // matcher, because the callback contract (sequential invocation, stop
  // semantics exact at the cap) cannot be honored from several workers.
  MatchResult Match(const Graph& q, const MatchOptions& options = {});

 private:
  CflMatcher serial_;  // Prepare pipeline + enumeration-mode fallback
  ThreadPool pool_;
};

// Engine wrapper for the benches, the difftest oracle, and the equivalence
// tests; named "CFL-Match-P<threads>".
std::unique_ptr<SubgraphEngine> MakeParallelCflMatch(const Graph& data,
                                                     uint32_t threads);

}  // namespace cfl

#endif  // CFL_PARALLEL_PARALLEL_MATCH_H_
