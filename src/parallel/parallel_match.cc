#include "parallel/parallel_match.h"

#include <atomic>
#include <string>
#include <utility>
#include <vector>

#include "match/enumerator.h"
#include "match/leaf_match.h"
#include "obs/clock.h"

namespace cfl {

namespace {

using obs::WallTimer;

// Saturating accumulate on the shared embedding budget: leaf-match products
// can individually saturate at kNoLimit, so a plain fetch_add could wrap.
// Returns the post-add value.
uint64_t AtomicSaturatingAdd(std::atomic<uint64_t>& total,
                             uint64_t delta) noexcept {
  uint64_t current = total.load(std::memory_order_relaxed);
  uint64_t next;
  do {
    next = SaturatingAdd(current, delta);
  } while (!total.compare_exchange_weak(current, next,
                                        std::memory_order_relaxed));
  return next;
}

}  // namespace

ParallelCflMatcher::ParallelCflMatcher(const Graph& data, uint32_t threads)
    : serial_(data), pool_(threads) {}

MatchResult ParallelCflMatcher::Match(const Graph& q,
                                      const MatchOptions& options) {
  // Enumeration mode: the per-embedding callback is a sequential contract.
  if (options.on_embedding) return serial_.Match(q, options);

  MatchResult result;
  WallTimer total_timer;

  PreparedQuery prepared = serial_.Prepare(q, options);
  const Graph& data = serial_.data();
  const Cpi& cpi = prepared.cpi;
  result.build_seconds = prepared.build_seconds;
  result.order_seconds = prepared.order_seconds;
  result.index_entries = cpi.SizeInEntries();
  CFL_STATS_ONLY(result.stats = prepared.stats;)

  if (prepared.no_results || prepared.order.steps.empty()) {
    result.total_seconds = total_timer.Lap();
    return result;
  }

  WallTimer phase_timer;
  const std::span<const MatchStep> steps(prepared.order.steps);
  const uint32_t root_count =
      CheckedCandidateCount(cpi.Candidates(steps[0].u).size());
  const uint64_t cap = options.limits.max_embeddings;
  const bool compressed = data.HasMultiplicities();

  // Shared, all-workers state — every field here is a std::atomic or const,
  // the discipline the concurrency contracts require (anything else shared
  // across workers would need a CFL_GUARDED_BY mutex; see
  // check/thread_annotations.h and DESIGN.md §7). `total` is the embedding
  // budget; `stop` is raised when it crosses the cap so every worker
  // abandons its subtree at the next visit / next root claim. `next_root`
  // is the work-stealing cursor. The deadline instant is fixed here, before
  // the fork, so all workers expire together regardless of when they start.
  std::atomic<uint32_t> next_root CFL_ATOMIC_INTENT(counter){0};
  std::atomic<uint64_t> total CFL_ATOMIC_INTENT(counter){0};
  std::atomic<bool> stop CFL_ATOMIC_INTENT(flag){false};
  std::atomic<bool> timed_out CFL_ATOMIC_INTENT(flag){false};

  const Deadline shared_deadline(options.limits.time_limit_seconds);
  const LeafMatcher leaf_prototype(q, cpi, prepared.order.leaves);

  // Per-worker effort counters and stats shards, merged in worker order at
  // the barrier. Each worker writes only its own slot while the pool runs;
  // the main thread reads them after the join, so no slot is ever contended
  // (at worst adjacent slots share a cache line).
  // cfl-lint: allow(narrowing) ThreadPool::size() is already uint32_t
  const uint32_t workers = pool_.size();
  std::vector<uint64_t> tried(workers, 0);
  std::vector<uint64_t> bound(workers, 0);
  CFL_STATS_ONLY(std::vector<EnumStats> shards(workers);
                 std::vector<uint64_t> roots_claimed(workers, 0);)

  pool_.Run([&](uint32_t worker) {
    // Private mutable state: search stacks, leaf-match scratch, and the
    // deadline's coarse-tick cache (same expiry instant as every worker).
    EnumeratorState state(q.NumVertices(), data.NumVertices());
    LeafMatcher leaf_matcher = leaf_prototype;
    Deadline deadline = shared_deadline;

    auto visit = [&]() {
      uint64_t count = 1;
      if (compressed) {
        count = ExpansionFactor(data, state.mapping);
      }
      if (leaf_matcher.HasLeaves()) {
        // Sampled leaf timing, same scheme as the serial matcher (the
        // per-worker shard keeps its own sampling cursor).
        CFL_STATS_ONLY(++state.stats.leaf_calls;
                       obs::TimePoint leaf_t0;
                       const bool sample = state.stats.ShouldSampleLeaf();
                       if (sample) leaf_t0 = obs::Now();)
        const uint64_t leaf_count = leaf_matcher.CountEmbeddings(data, state);
        CFL_STATS_ONLY(if (sample) {
          ++state.stats.leaf_sampled_calls;
          state.stats.leaf_sampled_seconds += obs::SecondsSince(leaf_t0);
        } state.stats.leaf_products =
              SaturatingAdd(state.stats.leaf_products, leaf_count);)
        count = SaturatingMul(count, leaf_count);
      }
      uint64_t after = AtomicSaturatingAdd(total, count);
      if (after >= cap) {
        stop.store(true, std::memory_order_relaxed);
        return false;
      }
      return !stop.load(std::memory_order_relaxed);
    };

    while (!stop.load(std::memory_order_relaxed)) {
      const uint32_t r = next_root.fetch_add(1, std::memory_order_relaxed);
      if (r >= root_count) break;
      CFL_STATS_ONLY(++roots_claimed[worker];)
      EnumerateStatus status = EnumeratePartial(
          data, cpi, steps, state, deadline, visit, r, r + 1);
      if (status == EnumerateStatus::kTimedOut) {
        timed_out.store(true, std::memory_order_relaxed);
        break;
      }
      if (status == EnumerateStatus::kStopped) break;
    }
    tried[worker] = state.candidates_tried;
    bound[worker] = state.candidates_bound;
    CFL_STATS_ONLY(shards[worker] = state.stats;)
  });

  result.embeddings = total.load(std::memory_order_relaxed);
  result.timed_out = timed_out.load(std::memory_order_relaxed);
  // Same tie-break as the serial matcher and the baselines: reached_limit
  // iff the cap was hit, regardless of whether another worker's deadline
  // expired in the same instant (both flags may be true). Without this a
  // cap+deadline photo finish classified differently here than serially.
  result.reached_limit = result.embeddings >= cap;
  for (uint32_t w = 0; w < workers; ++w) {
    result.candidates_tried += tried[w];
    result.candidates_bound += bound[w];
  }
  result.enumerate_seconds = phase_timer.Lap();
  CFL_STATS_ONLY({
    MatchStats& s = result.stats;
    s.enumerate_seconds = result.enumerate_seconds;
    for (const EnumStats& shard : shards) s.enumeration.Merge(shard);
    s.candidates_tried = result.candidates_tried;
    s.candidates_bound = result.candidates_bound;
    s.embeddings_found = result.embeddings;
    s.threads = workers;
    s.root_candidates = root_count;
    s.worker_roots_claimed = std::move(roots_claimed);
  })
  result.total_seconds = total_timer.Lap();
  return result;
}

namespace {

class ParallelCflEngine : public SubgraphEngine {
 public:
  ParallelCflEngine(const Graph& data, uint32_t threads)
      : name_("CFL-Match-P" + std::to_string(threads == 0 ? 1 : threads)),
        matcher_(data, threads) {}

  std::string_view name() const override { return name_; }

  MatchResult Run(const Graph& query, const MatchLimits& limits) override {
    MatchOptions options;
    options.limits = limits;
    return matcher_.Match(query, options);
  }

 private:
  std::string name_;
  ParallelCflMatcher matcher_;
};

}  // namespace

std::unique_ptr<SubgraphEngine> MakeParallelCflMatch(const Graph& data,
                                                     uint32_t threads) {
  return std::make_unique<ParallelCflEngine>(data, threads);
}

}  // namespace cfl
