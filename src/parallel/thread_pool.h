// Minimal fork-join thread pool for the parallel enumeration layer.
//
// The enumeration workload is a classic parallel region: N workers run the
// same body (with a worker id), all finish, results are merged at the
// barrier. `ThreadPool::Run` models exactly that — it blocks until every
// worker has returned, so the caller observes a clean fork/join boundary
// and never needs per-task futures.
//
// Workers are started once and reused across Run calls (a matcher serves
// whole query sets; respawning threads per query would dominate small
// queries). A pool of size 1 spawns no threads at all and runs the body
// inline on the caller, so a single-threaded ParallelCflMatcher is
// genuinely serial — same stacks, same determinism, trivially debuggable.
//
// Lock discipline (machine-checked on Clang builds, see
// check/thread_annotations.h): every cross-thread field is CFL_GUARDED_BY
// the one pool mutex `mu_`; `size_` is const and `workers_` is touched only
// by the constructing/destructing thread. Clang Thread Safety Analysis
// (-Werror=thread-safety in the lint CI job) rejects any access to the
// guarded fields outside a `MutexLock` scope.

#ifndef CFL_PARALLEL_THREAD_POOL_H_
#define CFL_PARALLEL_THREAD_POOL_H_

#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "check/thread_annotations.h"

namespace cfl {

class ThreadPool {
 public:
  // `threads` == 0 is clamped to 1. The pool never oversubscribes on its
  // own: callers pick the count (benches sweep it; engines default to 1).
  explicit ThreadPool(uint32_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  uint32_t size() const { return size_; }

  // Runs body(worker_id) for worker_id in [0, size()) and returns once all
  // workers have finished (the join barrier). `body` must be safe to call
  // concurrently from size() threads and must not throw: a throwing body is
  // caught at the worker boundary and fails fast via CFL_CHECK with the
  // exception message (silently unwinding a worker would strand Run on the
  // join barrier forever). Not reentrant: one Run at a time per pool,
  // enforced with a CFL_CHECK.
  void Run(const std::function<void(uint32_t)>& body) CFL_EXCLUDES(mu_);

 private:
  // noexcept: runs on the worker thread outside the InvokeBody boundary,
  // where an escaped exception is an immediate std::terminate with no
  // context (enforced by cfl_analyze rule worker-noexcept).
  void WorkerLoop(uint32_t worker_id) noexcept CFL_EXCLUDES(mu_);

  // The worker boundary: invokes `body(worker_id)` and converts any escaped
  // exception into a fail-fast CFL_CHECK carrying the message. noexcept
  // because the conversion itself must not throw.
  static void InvokeBody(const std::function<void(uint32_t)>& body,
                         uint32_t worker_id) noexcept;

  const uint32_t size_;

  Mutex mu_ CFL_LOCK_LEVEL(10);
  CondVar work_ready_;  // signaled under mu_: new generation or shutdown
  CondVar work_done_;   // signaled under mu_: pending_ reached zero

  // Valid while a Run is in flight (pending_ > 0), null otherwise.
  const std::function<void(uint32_t)>* body_ CFL_GUARDED_BY(mu_) = nullptr;
  uint64_t generation_ CFL_GUARDED_BY(mu_) = 0;  // bumped per Run
  uint32_t pending_ CFL_GUARDED_BY(mu_) = 0;  // workers inside current Run
  bool shutdown_ CFL_GUARDED_BY(mu_) = false;

  std::vector<std::thread> workers_;  // empty when size_ == 1
};

}  // namespace cfl

#endif  // CFL_PARALLEL_THREAD_POOL_H_
