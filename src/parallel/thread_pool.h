// Minimal fork-join thread pool for the parallel enumeration layer.
//
// The enumeration workload is a classic parallel region: N workers run the
// same body (with a worker id), all finish, results are merged at the
// barrier. `ThreadPool::Run` models exactly that — it blocks until every
// worker has returned, so the caller observes a clean fork/join boundary
// and never needs per-task futures.
//
// Workers are started once and reused across Run calls (a matcher serves
// whole query sets; respawning threads per query would dominate small
// queries). A pool of size 1 spawns no threads at all and runs the body
// inline on the caller, so a single-threaded ParallelCflMatcher is
// genuinely serial — same stacks, same determinism, trivially debuggable.

#ifndef CFL_PARALLEL_THREAD_POOL_H_
#define CFL_PARALLEL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cfl {

class ThreadPool {
 public:
  // `threads` == 0 is clamped to 1. The pool never oversubscribes on its
  // own: callers pick the count (benches sweep it; engines default to 1).
  explicit ThreadPool(uint32_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  uint32_t size() const { return size_; }

  // Runs body(worker_id) for worker_id in [0, size()) and returns once all
  // workers have finished (the join barrier). `body` must be safe to call
  // concurrently from size() threads and must not throw. Not reentrant:
  // one Run at a time per pool.
  void Run(const std::function<void(uint32_t)>& body);

 private:
  void WorkerLoop(uint32_t worker_id);

  const uint32_t size_;

  std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable work_done_;
  const std::function<void(uint32_t)>* body_ = nullptr;  // valid during a Run
  uint64_t generation_ = 0;  // bumped per Run; wakes workers exactly once
  uint32_t pending_ = 0;     // workers still inside the current Run
  bool shutdown_ = false;

  std::vector<std::thread> workers_;  // empty when size_ == 1
};

}  // namespace cfl

#endif  // CFL_PARALLEL_THREAD_POOL_H_
