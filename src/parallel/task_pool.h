// Shared task-queue pool for concurrent multi-query scheduling.
//
// ThreadPool (thread_pool.h) is a fork-join parallel region: one Run at a
// time, every worker executes the same body, the caller blocks at the join
// barrier. That is the right shape for one query using the whole machine —
// and exactly the wrong shape for a resident server, where many queries
// must share the same workers without monopolizing them. `TaskPool` is the
// complementary primitive: callers Submit independent tasks, N workers
// drain the FIFO, and nothing ever blocks a submitter. Per-query fan-out is
// rebuilt on top with `TaskLatch` (a countdown the query's session waits
// on), so a query granted a quota of k enqueues k shard tasks and waits for
// its own latch while other queries' shards interleave on the same workers.
//
// Lock discipline matches ThreadPool: every cross-thread field is
// CFL_GUARDED_BY the one pool mutex, Clang TSA-checked; task bodies must
// not throw (same fail-fast boundary as ThreadPool::InvokeBody).
//
// Unlike ThreadPool, size 1 still spawns one worker thread: Submit must
// return immediately even when the pool is busy (a server's accept loop
// cannot run queries inline).

#ifndef CFL_PARALLEL_TASK_POOL_H_
#define CFL_PARALLEL_TASK_POOL_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "check/thread_annotations.h"

namespace cfl {

class TaskPool {
 public:
  // `threads` == 0 is clamped to 1.
  explicit TaskPool(uint32_t threads);

  // Stops accepting tasks, drains every task already queued, joins.
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  uint32_t size() const { return size_; }

  // Enqueues `task` for execution on some worker. Never blocks on task
  // execution. Must not be called during/after destruction (CFL_CHECK).
  // The task must not throw: a throwing task is caught at the worker
  // boundary and fails fast via CFL_CHECK with the message.
  void Submit(std::function<void()> task) CFL_EXCLUDES(mu_);

  // Tasks submitted and not yet finished (queued + running). Advisory: the
  // value is stale the moment it returns; the admission controller uses it
  // only to size quotas. Non-const because it takes the pool mutex (the
  // lint's mutable-member rule rightly bans a mutable Mutex).
  uint32_t PendingTasks() CFL_EXCLUDES(mu_);

 private:
  // noexcept: runs on the worker thread outside the InvokeTask boundary
  // (same rationale as ThreadPool::WorkerLoop).
  void WorkerLoop() noexcept CFL_EXCLUDES(mu_);

  // The worker boundary: invokes the task and converts any escaped
  // exception into a fail-fast CFL_CHECK carrying the message.
  static void InvokeTask(const std::function<void()>& task) noexcept;

  const uint32_t size_;

  Mutex mu_ CFL_LOCK_LEVEL(50);
  CondVar task_ready_;  // signaled under mu_: new task or shutdown

  std::deque<std::function<void()>> queue_ CFL_GUARDED_BY(mu_);
  uint32_t in_flight_ CFL_GUARDED_BY(mu_) = 0;  // tasks currently running
  bool shutdown_ CFL_GUARDED_BY(mu_) = false;

  std::vector<std::thread> workers_;
};

// Countdown completion latch: a query that fans k shard tasks out onto a
// shared TaskPool constructs a TaskLatch(k), each shard calls CountDown()
// as it finishes, and the query's session thread Wait()s — the fork-join
// barrier of ThreadPool::Run, rebuilt per query on shared workers.
class TaskLatch {
 public:
  explicit TaskLatch(uint32_t count) : remaining_(count) {}

  TaskLatch(const TaskLatch&) = delete;
  TaskLatch& operator=(const TaskLatch&) = delete;

  void CountDown() CFL_EXCLUDES(mu_);

  // Blocks until CountDown has been called `count` times.
  void Wait() CFL_EXCLUDES(mu_);

 private:
  Mutex mu_ CFL_LOCK_LEVEL(80);
  CondVar done_;  // signaled under mu_ when remaining_ hits zero
  uint32_t remaining_ CFL_GUARDED_BY(mu_);
};

}  // namespace cfl

#endif  // CFL_PARALLEL_TASK_POOL_H_
