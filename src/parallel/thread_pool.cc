#include "parallel/thread_pool.h"

#include "check/check.h"

namespace cfl {

ThreadPool::ThreadPool(uint32_t threads) : size_(threads == 0 ? 1 : threads) {
  if (size_ == 1) return;  // inline mode, no worker threads
  workers_.reserve(size_);
  for (uint32_t id = 0; id < size_; ++id) {
    workers_.emplace_back([this, id] { WorkerLoop(id); });
  }
}

ThreadPool::~ThreadPool() {
  if (workers_.empty()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Run(const std::function<void(uint32_t)>& body) {
  if (size_ == 1) {
    body(0);
    return;
  }
  std::unique_lock<std::mutex> lock(mu_);
  CFL_CHECK(pending_ == 0) << " — ThreadPool::Run is not reentrant";
  body_ = &body;
  pending_ = size_;
  ++generation_;
  work_ready_.notify_all();
  work_done_.wait(lock, [this] { return pending_ == 0; });
  body_ = nullptr;
}

void ThreadPool::WorkerLoop(uint32_t worker_id) {
  uint64_t seen_generation = 0;
  while (true) {
    const std::function<void(uint32_t)>* body = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [&] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
      body = body_;
    }
    (*body)(worker_id);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--pending_ == 0) work_done_.notify_one();
    }
  }
}

}  // namespace cfl
