#include "parallel/thread_pool.h"

#include <exception>

#include "check/check.h"

namespace cfl {

ThreadPool::ThreadPool(uint32_t threads) : size_(threads == 0 ? 1 : threads) {
  if (size_ == 1) return;  // inline mode, no worker threads
  workers_.reserve(size_);
  for (uint32_t id = 0; id < size_; ++id) {
    workers_.emplace_back([this, id] { WorkerLoop(id); });
  }
}

ThreadPool::~ThreadPool() {
  if (workers_.empty()) return;
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  work_ready_.NotifyAll();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::InvokeBody(const std::function<void(uint32_t)>& body,
                            uint32_t worker_id) noexcept {
  // Fail fast with the message instead of letting the exception escape the
  // worker thread (std::terminate with no context) or, worse, unwind past
  // the pending_ decrement and strand Run on the join barrier.
  try {
    body(worker_id);
  } catch (const std::exception& e) {
    CFL_CHECK(false) << " — ThreadPool body threw on worker " << worker_id
                     << ": " << e.what();
  } catch (...) {
    CFL_CHECK(false) << " — ThreadPool body threw a non-std::exception on "
                     << "worker " << worker_id;
  }
}

void ThreadPool::Run(const std::function<void(uint32_t)>& body) {
  if (size_ == 1) {
    InvokeBody(body, 0);
    return;
  }
  MutexLock lock(mu_);
  CFL_CHECK(pending_ == 0) << " — ThreadPool::Run is not reentrant";
  body_ = &body;
  pending_ = size_;
  ++generation_;
  work_ready_.NotifyAll();
  // cfl-analyze: allow(blocking-under-lock) join barrier: Wait releases mu_
  while (pending_ != 0) work_done_.Wait(mu_);
  body_ = nullptr;
}

void ThreadPool::WorkerLoop(uint32_t worker_id) noexcept {
  uint64_t seen_generation = 0;
  while (true) {
    const std::function<void(uint32_t)>* body = nullptr;
    {
      MutexLock lock(mu_);
      while (!shutdown_ && generation_ == seen_generation) {
        // cfl-analyze: allow(blocking-under-lock) idle wait releases mu_
        work_ready_.Wait(mu_);
      }
      if (shutdown_) return;
      seen_generation = generation_;
      body = body_;
    }
    // Outside the lock: the body runs concurrently on every worker.
    InvokeBody(*body, worker_id);
    {
      MutexLock lock(mu_);
      if (--pending_ == 0) work_done_.NotifyOne();
    }
  }
}

}  // namespace cfl
