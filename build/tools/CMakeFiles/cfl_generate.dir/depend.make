# Empty dependencies file for cfl_generate.
# This may be replaced when dependencies are built.
