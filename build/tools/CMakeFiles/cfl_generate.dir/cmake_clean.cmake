file(REMOVE_RECURSE
  "CMakeFiles/cfl_generate.dir/cfl_generate.cc.o"
  "CMakeFiles/cfl_generate.dir/cfl_generate.cc.o.d"
  "cfl_generate"
  "cfl_generate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfl_generate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
