file(REMOVE_RECURSE
  "CMakeFiles/cfl_query.dir/cfl_query.cc.o"
  "CMakeFiles/cfl_query.dir/cfl_query.cc.o.d"
  "cfl_query"
  "cfl_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfl_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
