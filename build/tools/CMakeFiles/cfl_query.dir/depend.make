# Empty dependencies file for cfl_query.
# This may be replaced when dependencies are built.
