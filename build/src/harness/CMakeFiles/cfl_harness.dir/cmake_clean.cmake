file(REMOVE_RECURSE
  "CMakeFiles/cfl_harness.dir/env.cc.o"
  "CMakeFiles/cfl_harness.dir/env.cc.o.d"
  "CMakeFiles/cfl_harness.dir/runner.cc.o"
  "CMakeFiles/cfl_harness.dir/runner.cc.o.d"
  "CMakeFiles/cfl_harness.dir/table.cc.o"
  "CMakeFiles/cfl_harness.dir/table.cc.o.d"
  "libcfl_harness.a"
  "libcfl_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfl_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
