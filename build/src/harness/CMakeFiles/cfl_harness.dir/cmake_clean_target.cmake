file(REMOVE_RECURSE
  "libcfl_harness.a"
)
