# Empty compiler generated dependencies file for cfl_harness.
# This may be replaced when dependencies are built.
