file(REMOVE_RECURSE
  "libcfl_baseline.a"
)
