file(REMOVE_RECURSE
  "CMakeFiles/cfl_baseline.dir/compress.cc.o"
  "CMakeFiles/cfl_baseline.dir/compress.cc.o.d"
  "CMakeFiles/cfl_baseline.dir/quicksi.cc.o"
  "CMakeFiles/cfl_baseline.dir/quicksi.cc.o.d"
  "CMakeFiles/cfl_baseline.dir/turboiso.cc.o"
  "CMakeFiles/cfl_baseline.dir/turboiso.cc.o.d"
  "CMakeFiles/cfl_baseline.dir/ullmann.cc.o"
  "CMakeFiles/cfl_baseline.dir/ullmann.cc.o.d"
  "CMakeFiles/cfl_baseline.dir/vf2.cc.o"
  "CMakeFiles/cfl_baseline.dir/vf2.cc.o.d"
  "libcfl_baseline.a"
  "libcfl_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfl_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
