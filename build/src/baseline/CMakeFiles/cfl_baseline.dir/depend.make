# Empty dependencies file for cfl_baseline.
# This may be replaced when dependencies are built.
