
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/compress.cc" "src/baseline/CMakeFiles/cfl_baseline.dir/compress.cc.o" "gcc" "src/baseline/CMakeFiles/cfl_baseline.dir/compress.cc.o.d"
  "/root/repo/src/baseline/quicksi.cc" "src/baseline/CMakeFiles/cfl_baseline.dir/quicksi.cc.o" "gcc" "src/baseline/CMakeFiles/cfl_baseline.dir/quicksi.cc.o.d"
  "/root/repo/src/baseline/turboiso.cc" "src/baseline/CMakeFiles/cfl_baseline.dir/turboiso.cc.o" "gcc" "src/baseline/CMakeFiles/cfl_baseline.dir/turboiso.cc.o.d"
  "/root/repo/src/baseline/ullmann.cc" "src/baseline/CMakeFiles/cfl_baseline.dir/ullmann.cc.o" "gcc" "src/baseline/CMakeFiles/cfl_baseline.dir/ullmann.cc.o.d"
  "/root/repo/src/baseline/vf2.cc" "src/baseline/CMakeFiles/cfl_baseline.dir/vf2.cc.o" "gcc" "src/baseline/CMakeFiles/cfl_baseline.dir/vf2.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/cfl_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/order/CMakeFiles/cfl_order.dir/DependInfo.cmake"
  "/root/repo/build/src/match/CMakeFiles/cfl_match_lib.dir/DependInfo.cmake"
  "/root/repo/build/src/cpi/CMakeFiles/cfl_cpi.dir/DependInfo.cmake"
  "/root/repo/build/src/decomp/CMakeFiles/cfl_decomp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
