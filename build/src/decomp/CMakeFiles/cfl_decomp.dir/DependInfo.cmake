
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/decomp/bfs_tree.cc" "src/decomp/CMakeFiles/cfl_decomp.dir/bfs_tree.cc.o" "gcc" "src/decomp/CMakeFiles/cfl_decomp.dir/bfs_tree.cc.o.d"
  "/root/repo/src/decomp/cfl_decomposition.cc" "src/decomp/CMakeFiles/cfl_decomp.dir/cfl_decomposition.cc.o" "gcc" "src/decomp/CMakeFiles/cfl_decomp.dir/cfl_decomposition.cc.o.d"
  "/root/repo/src/decomp/forest_is.cc" "src/decomp/CMakeFiles/cfl_decomp.dir/forest_is.cc.o" "gcc" "src/decomp/CMakeFiles/cfl_decomp.dir/forest_is.cc.o.d"
  "/root/repo/src/decomp/k_core.cc" "src/decomp/CMakeFiles/cfl_decomp.dir/k_core.cc.o" "gcc" "src/decomp/CMakeFiles/cfl_decomp.dir/k_core.cc.o.d"
  "/root/repo/src/decomp/nec.cc" "src/decomp/CMakeFiles/cfl_decomp.dir/nec.cc.o" "gcc" "src/decomp/CMakeFiles/cfl_decomp.dir/nec.cc.o.d"
  "/root/repo/src/decomp/two_core.cc" "src/decomp/CMakeFiles/cfl_decomp.dir/two_core.cc.o" "gcc" "src/decomp/CMakeFiles/cfl_decomp.dir/two_core.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/cfl_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
