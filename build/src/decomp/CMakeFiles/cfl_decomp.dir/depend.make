# Empty dependencies file for cfl_decomp.
# This may be replaced when dependencies are built.
