file(REMOVE_RECURSE
  "CMakeFiles/cfl_decomp.dir/bfs_tree.cc.o"
  "CMakeFiles/cfl_decomp.dir/bfs_tree.cc.o.d"
  "CMakeFiles/cfl_decomp.dir/cfl_decomposition.cc.o"
  "CMakeFiles/cfl_decomp.dir/cfl_decomposition.cc.o.d"
  "CMakeFiles/cfl_decomp.dir/forest_is.cc.o"
  "CMakeFiles/cfl_decomp.dir/forest_is.cc.o.d"
  "CMakeFiles/cfl_decomp.dir/k_core.cc.o"
  "CMakeFiles/cfl_decomp.dir/k_core.cc.o.d"
  "CMakeFiles/cfl_decomp.dir/nec.cc.o"
  "CMakeFiles/cfl_decomp.dir/nec.cc.o.d"
  "CMakeFiles/cfl_decomp.dir/two_core.cc.o"
  "CMakeFiles/cfl_decomp.dir/two_core.cc.o.d"
  "libcfl_decomp.a"
  "libcfl_decomp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfl_decomp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
