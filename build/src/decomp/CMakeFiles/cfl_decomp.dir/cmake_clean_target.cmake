file(REMOVE_RECURSE
  "libcfl_decomp.a"
)
