file(REMOVE_RECURSE
  "libcfl_match_lib.a"
)
