file(REMOVE_RECURSE
  "CMakeFiles/cfl_match_lib.dir/cfl_match.cc.o"
  "CMakeFiles/cfl_match_lib.dir/cfl_match.cc.o.d"
  "CMakeFiles/cfl_match_lib.dir/embedding.cc.o"
  "CMakeFiles/cfl_match_lib.dir/embedding.cc.o.d"
  "CMakeFiles/cfl_match_lib.dir/engine.cc.o"
  "CMakeFiles/cfl_match_lib.dir/engine.cc.o.d"
  "CMakeFiles/cfl_match_lib.dir/iterator.cc.o"
  "CMakeFiles/cfl_match_lib.dir/iterator.cc.o.d"
  "CMakeFiles/cfl_match_lib.dir/leaf_match.cc.o"
  "CMakeFiles/cfl_match_lib.dir/leaf_match.cc.o.d"
  "libcfl_match_lib.a"
  "libcfl_match_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfl_match_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
