
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/match/cfl_match.cc" "src/match/CMakeFiles/cfl_match_lib.dir/cfl_match.cc.o" "gcc" "src/match/CMakeFiles/cfl_match_lib.dir/cfl_match.cc.o.d"
  "/root/repo/src/match/embedding.cc" "src/match/CMakeFiles/cfl_match_lib.dir/embedding.cc.o" "gcc" "src/match/CMakeFiles/cfl_match_lib.dir/embedding.cc.o.d"
  "/root/repo/src/match/engine.cc" "src/match/CMakeFiles/cfl_match_lib.dir/engine.cc.o" "gcc" "src/match/CMakeFiles/cfl_match_lib.dir/engine.cc.o.d"
  "/root/repo/src/match/iterator.cc" "src/match/CMakeFiles/cfl_match_lib.dir/iterator.cc.o" "gcc" "src/match/CMakeFiles/cfl_match_lib.dir/iterator.cc.o.d"
  "/root/repo/src/match/leaf_match.cc" "src/match/CMakeFiles/cfl_match_lib.dir/leaf_match.cc.o" "gcc" "src/match/CMakeFiles/cfl_match_lib.dir/leaf_match.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/cfl_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/decomp/CMakeFiles/cfl_decomp.dir/DependInfo.cmake"
  "/root/repo/build/src/cpi/CMakeFiles/cfl_cpi.dir/DependInfo.cmake"
  "/root/repo/build/src/order/CMakeFiles/cfl_order.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
