# Empty dependencies file for cfl_match_lib.
# This may be replaced when dependencies are built.
