# Empty dependencies file for cfl_gen.
# This may be replaced when dependencies are built.
