file(REMOVE_RECURSE
  "libcfl_gen.a"
)
