file(REMOVE_RECURSE
  "CMakeFiles/cfl_gen.dir/datasets.cc.o"
  "CMakeFiles/cfl_gen.dir/datasets.cc.o.d"
  "CMakeFiles/cfl_gen.dir/query_gen.cc.o"
  "CMakeFiles/cfl_gen.dir/query_gen.cc.o.d"
  "CMakeFiles/cfl_gen.dir/synthetic.cc.o"
  "CMakeFiles/cfl_gen.dir/synthetic.cc.o.d"
  "libcfl_gen.a"
  "libcfl_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfl_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
