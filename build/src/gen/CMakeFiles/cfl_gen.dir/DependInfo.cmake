
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gen/datasets.cc" "src/gen/CMakeFiles/cfl_gen.dir/datasets.cc.o" "gcc" "src/gen/CMakeFiles/cfl_gen.dir/datasets.cc.o.d"
  "/root/repo/src/gen/query_gen.cc" "src/gen/CMakeFiles/cfl_gen.dir/query_gen.cc.o" "gcc" "src/gen/CMakeFiles/cfl_gen.dir/query_gen.cc.o.d"
  "/root/repo/src/gen/synthetic.cc" "src/gen/CMakeFiles/cfl_gen.dir/synthetic.cc.o" "gcc" "src/gen/CMakeFiles/cfl_gen.dir/synthetic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/cfl_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
