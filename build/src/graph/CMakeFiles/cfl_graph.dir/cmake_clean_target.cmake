file(REMOVE_RECURSE
  "libcfl_graph.a"
)
