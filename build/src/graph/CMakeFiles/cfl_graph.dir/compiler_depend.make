# Empty compiler generated dependencies file for cfl_graph.
# This may be replaced when dependencies are built.
