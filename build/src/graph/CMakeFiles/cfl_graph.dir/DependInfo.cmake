
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/graph.cc" "src/graph/CMakeFiles/cfl_graph.dir/graph.cc.o" "gcc" "src/graph/CMakeFiles/cfl_graph.dir/graph.cc.o.d"
  "/root/repo/src/graph/graph_builder.cc" "src/graph/CMakeFiles/cfl_graph.dir/graph_builder.cc.o" "gcc" "src/graph/CMakeFiles/cfl_graph.dir/graph_builder.cc.o.d"
  "/root/repo/src/graph/graph_io.cc" "src/graph/CMakeFiles/cfl_graph.dir/graph_io.cc.o" "gcc" "src/graph/CMakeFiles/cfl_graph.dir/graph_io.cc.o.d"
  "/root/repo/src/graph/graph_stats.cc" "src/graph/CMakeFiles/cfl_graph.dir/graph_stats.cc.o" "gcc" "src/graph/CMakeFiles/cfl_graph.dir/graph_stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
