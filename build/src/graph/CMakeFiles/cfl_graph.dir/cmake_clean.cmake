file(REMOVE_RECURSE
  "CMakeFiles/cfl_graph.dir/graph.cc.o"
  "CMakeFiles/cfl_graph.dir/graph.cc.o.d"
  "CMakeFiles/cfl_graph.dir/graph_builder.cc.o"
  "CMakeFiles/cfl_graph.dir/graph_builder.cc.o.d"
  "CMakeFiles/cfl_graph.dir/graph_io.cc.o"
  "CMakeFiles/cfl_graph.dir/graph_io.cc.o.d"
  "CMakeFiles/cfl_graph.dir/graph_stats.cc.o"
  "CMakeFiles/cfl_graph.dir/graph_stats.cc.o.d"
  "libcfl_graph.a"
  "libcfl_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfl_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
