
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cpi/candidate_filter.cc" "src/cpi/CMakeFiles/cfl_cpi.dir/candidate_filter.cc.o" "gcc" "src/cpi/CMakeFiles/cfl_cpi.dir/candidate_filter.cc.o.d"
  "/root/repo/src/cpi/cpi.cc" "src/cpi/CMakeFiles/cfl_cpi.dir/cpi.cc.o" "gcc" "src/cpi/CMakeFiles/cfl_cpi.dir/cpi.cc.o.d"
  "/root/repo/src/cpi/cpi_builder.cc" "src/cpi/CMakeFiles/cfl_cpi.dir/cpi_builder.cc.o" "gcc" "src/cpi/CMakeFiles/cfl_cpi.dir/cpi_builder.cc.o.d"
  "/root/repo/src/cpi/root_select.cc" "src/cpi/CMakeFiles/cfl_cpi.dir/root_select.cc.o" "gcc" "src/cpi/CMakeFiles/cfl_cpi.dir/root_select.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/cfl_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/decomp/CMakeFiles/cfl_decomp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
