# Empty compiler generated dependencies file for cfl_cpi.
# This may be replaced when dependencies are built.
