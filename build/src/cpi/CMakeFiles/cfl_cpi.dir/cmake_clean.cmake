file(REMOVE_RECURSE
  "CMakeFiles/cfl_cpi.dir/candidate_filter.cc.o"
  "CMakeFiles/cfl_cpi.dir/candidate_filter.cc.o.d"
  "CMakeFiles/cfl_cpi.dir/cpi.cc.o"
  "CMakeFiles/cfl_cpi.dir/cpi.cc.o.d"
  "CMakeFiles/cfl_cpi.dir/cpi_builder.cc.o"
  "CMakeFiles/cfl_cpi.dir/cpi_builder.cc.o.d"
  "CMakeFiles/cfl_cpi.dir/root_select.cc.o"
  "CMakeFiles/cfl_cpi.dir/root_select.cc.o.d"
  "libcfl_cpi.a"
  "libcfl_cpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfl_cpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
