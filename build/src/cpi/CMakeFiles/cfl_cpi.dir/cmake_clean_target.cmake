file(REMOVE_RECURSE
  "libcfl_cpi.a"
)
