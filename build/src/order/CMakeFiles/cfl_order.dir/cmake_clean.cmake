file(REMOVE_RECURSE
  "CMakeFiles/cfl_order.dir/cardinality.cc.o"
  "CMakeFiles/cfl_order.dir/cardinality.cc.o.d"
  "CMakeFiles/cfl_order.dir/cost_model.cc.o"
  "CMakeFiles/cfl_order.dir/cost_model.cc.o.d"
  "CMakeFiles/cfl_order.dir/matching_order.cc.o"
  "CMakeFiles/cfl_order.dir/matching_order.cc.o.d"
  "CMakeFiles/cfl_order.dir/path_enum.cc.o"
  "CMakeFiles/cfl_order.dir/path_enum.cc.o.d"
  "CMakeFiles/cfl_order.dir/path_order.cc.o"
  "CMakeFiles/cfl_order.dir/path_order.cc.o.d"
  "CMakeFiles/cfl_order.dir/quicksi_order.cc.o"
  "CMakeFiles/cfl_order.dir/quicksi_order.cc.o.d"
  "libcfl_order.a"
  "libcfl_order.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfl_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
