
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/order/cardinality.cc" "src/order/CMakeFiles/cfl_order.dir/cardinality.cc.o" "gcc" "src/order/CMakeFiles/cfl_order.dir/cardinality.cc.o.d"
  "/root/repo/src/order/cost_model.cc" "src/order/CMakeFiles/cfl_order.dir/cost_model.cc.o" "gcc" "src/order/CMakeFiles/cfl_order.dir/cost_model.cc.o.d"
  "/root/repo/src/order/matching_order.cc" "src/order/CMakeFiles/cfl_order.dir/matching_order.cc.o" "gcc" "src/order/CMakeFiles/cfl_order.dir/matching_order.cc.o.d"
  "/root/repo/src/order/path_enum.cc" "src/order/CMakeFiles/cfl_order.dir/path_enum.cc.o" "gcc" "src/order/CMakeFiles/cfl_order.dir/path_enum.cc.o.d"
  "/root/repo/src/order/path_order.cc" "src/order/CMakeFiles/cfl_order.dir/path_order.cc.o" "gcc" "src/order/CMakeFiles/cfl_order.dir/path_order.cc.o.d"
  "/root/repo/src/order/quicksi_order.cc" "src/order/CMakeFiles/cfl_order.dir/quicksi_order.cc.o" "gcc" "src/order/CMakeFiles/cfl_order.dir/quicksi_order.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/cfl_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/decomp/CMakeFiles/cfl_decomp.dir/DependInfo.cmake"
  "/root/repo/build/src/cpi/CMakeFiles/cfl_cpi.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
