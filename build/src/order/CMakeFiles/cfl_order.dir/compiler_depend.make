# Empty compiler generated dependencies file for cfl_order.
# This may be replaced when dependencies are built.
