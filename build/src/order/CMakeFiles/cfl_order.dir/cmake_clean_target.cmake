file(REMOVE_RECURSE
  "libcfl_order.a"
)
