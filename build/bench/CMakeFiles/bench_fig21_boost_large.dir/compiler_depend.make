# Empty compiler generated dependencies file for bench_fig21_boost_large.
# This may be replaced when dependencies are built.
