# Empty dependencies file for bench_fig09_enum_time.
# This may be replaced when dependencies are built.
