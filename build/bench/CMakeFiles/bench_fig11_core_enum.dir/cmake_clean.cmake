file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_core_enum.dir/bench_fig11_core_enum.cc.o"
  "CMakeFiles/bench_fig11_core_enum.dir/bench_fig11_core_enum.cc.o.d"
  "bench_fig11_core_enum"
  "bench_fig11_core_enum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_core_enum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
