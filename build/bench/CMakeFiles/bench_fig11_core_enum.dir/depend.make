# Empty dependencies file for bench_fig11_core_enum.
# This may be replaced when dependencies are built.
