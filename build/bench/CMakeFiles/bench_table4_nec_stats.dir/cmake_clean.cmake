file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_nec_stats.dir/bench_table4_nec_stats.cc.o"
  "CMakeFiles/bench_table4_nec_stats.dir/bench_table4_nec_stats.cc.o.d"
  "bench_table4_nec_stats"
  "bench_table4_nec_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_nec_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
