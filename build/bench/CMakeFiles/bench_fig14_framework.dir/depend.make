# Empty dependencies file for bench_fig14_framework.
# This may be replaced when dependencies are built.
