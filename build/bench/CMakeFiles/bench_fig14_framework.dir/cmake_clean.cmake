file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_framework.dir/bench_fig14_framework.cc.o"
  "CMakeFiles/bench_fig14_framework.dir/bench_fig14_framework.cc.o.d"
  "bench_fig14_framework"
  "bench_fig14_framework.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_framework.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
