file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_boost.dir/bench_fig13_boost.cc.o"
  "CMakeFiles/bench_fig13_boost.dir/bench_fig13_boost.cc.o.d"
  "bench_fig13_boost"
  "bench_fig13_boost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_boost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
