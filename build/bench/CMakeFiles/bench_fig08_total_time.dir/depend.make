# Empty dependencies file for bench_fig08_total_time.
# This may be replaced when dependencies are built.
