file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_vary_embeddings.dir/bench_fig12_vary_embeddings.cc.o"
  "CMakeFiles/bench_fig12_vary_embeddings.dir/bench_fig12_vary_embeddings.cc.o.d"
  "bench_fig12_vary_embeddings"
  "bench_fig12_vary_embeddings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_vary_embeddings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
