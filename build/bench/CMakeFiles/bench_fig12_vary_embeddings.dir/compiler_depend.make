# Empty compiler generated dependencies file for bench_fig12_vary_embeddings.
# This may be replaced when dependencies are built.
