file(REMOVE_RECURSE
  "CMakeFiles/bench_fig20_enum_order_split.dir/bench_fig20_enum_order_split.cc.o"
  "CMakeFiles/bench_fig20_enum_order_split.dir/bench_fig20_enum_order_split.cc.o.d"
  "bench_fig20_enum_order_split"
  "bench_fig20_enum_order_split.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig20_enum_order_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
