# Empty compiler generated dependencies file for bench_fig20_enum_order_split.
# This may be replaced when dependencies are built.
