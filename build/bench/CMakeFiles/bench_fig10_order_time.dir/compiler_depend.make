# Empty compiler generated dependencies file for bench_fig10_order_time.
# This may be replaced when dependencies are built.
