file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_order_time.dir/bench_fig10_order_time.cc.o"
  "CMakeFiles/bench_fig10_order_time.dir/bench_fig10_order_time.cc.o.d"
  "bench_fig10_order_time"
  "bench_fig10_order_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_order_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
