file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_cpi_strategies.dir/bench_fig15_cpi_strategies.cc.o"
  "CMakeFiles/bench_fig15_cpi_strategies.dir/bench_fig15_cpi_strategies.cc.o.d"
  "bench_fig15_cpi_strategies"
  "bench_fig15_cpi_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_cpi_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
