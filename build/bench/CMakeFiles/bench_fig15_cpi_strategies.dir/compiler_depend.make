# Empty compiler generated dependencies file for bench_fig15_cpi_strategies.
# This may be replaced when dependencies are built.
