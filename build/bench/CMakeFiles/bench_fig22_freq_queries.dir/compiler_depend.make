# Empty compiler generated dependencies file for bench_fig22_freq_queries.
# This may be replaced when dependencies are built.
