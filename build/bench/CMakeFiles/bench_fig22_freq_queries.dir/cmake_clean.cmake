file(REMOVE_RECURSE
  "CMakeFiles/bench_fig22_freq_queries.dir/bench_fig22_freq_queries.cc.o"
  "CMakeFiles/bench_fig22_freq_queries.dir/bench_fig22_freq_queries.cc.o.d"
  "bench_fig22_freq_queries"
  "bench_fig22_freq_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig22_freq_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
