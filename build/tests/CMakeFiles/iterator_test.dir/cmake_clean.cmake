file(REMOVE_RECURSE
  "CMakeFiles/iterator_test.dir/iterator_test.cc.o"
  "CMakeFiles/iterator_test.dir/iterator_test.cc.o.d"
  "iterator_test"
  "iterator_test.pdb"
  "iterator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iterator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
