# Empty compiler generated dependencies file for iterator_test.
# This may be replaced when dependencies are built.
