
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/enumerator_test.cc" "tests/CMakeFiles/enumerator_test.dir/enumerator_test.cc.o" "gcc" "tests/CMakeFiles/enumerator_test.dir/enumerator_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/cfl_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/cfl_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/decomp/CMakeFiles/cfl_decomp.dir/DependInfo.cmake"
  "/root/repo/build/src/cpi/CMakeFiles/cfl_cpi.dir/DependInfo.cmake"
  "/root/repo/build/src/order/CMakeFiles/cfl_order.dir/DependInfo.cmake"
  "/root/repo/build/src/match/CMakeFiles/cfl_match_lib.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/cfl_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/harness/CMakeFiles/cfl_harness.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
