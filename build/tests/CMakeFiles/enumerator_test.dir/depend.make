# Empty dependencies file for enumerator_test.
# This may be replaced when dependencies are built.
