file(REMOVE_RECURSE
  "CMakeFiles/enumerator_test.dir/enumerator_test.cc.o"
  "CMakeFiles/enumerator_test.dir/enumerator_test.cc.o.d"
  "enumerator_test"
  "enumerator_test.pdb"
  "enumerator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enumerator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
