# Empty dependencies file for turboiso_test.
# This may be replaced when dependencies are built.
