file(REMOVE_RECURSE
  "CMakeFiles/turboiso_test.dir/turboiso_test.cc.o"
  "CMakeFiles/turboiso_test.dir/turboiso_test.cc.o.d"
  "turboiso_test"
  "turboiso_test.pdb"
  "turboiso_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turboiso_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
