file(REMOVE_RECURSE
  "CMakeFiles/leaf_match_test.dir/leaf_match_test.cc.o"
  "CMakeFiles/leaf_match_test.dir/leaf_match_test.cc.o.d"
  "leaf_match_test"
  "leaf_match_test.pdb"
  "leaf_match_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leaf_match_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
