# Empty compiler generated dependencies file for leaf_match_test.
# This may be replaced when dependencies are built.
