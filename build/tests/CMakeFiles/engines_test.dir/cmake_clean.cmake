file(REMOVE_RECURSE
  "CMakeFiles/engines_test.dir/engines_test.cc.o"
  "CMakeFiles/engines_test.dir/engines_test.cc.o.d"
  "engines_test"
  "engines_test.pdb"
  "engines_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engines_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
