# Empty dependencies file for engines_test.
# This may be replaced when dependencies are built.
