file(REMOVE_RECURSE
  "CMakeFiles/cpi_test.dir/cpi_test.cc.o"
  "CMakeFiles/cpi_test.dir/cpi_test.cc.o.d"
  "cpi_test"
  "cpi_test.pdb"
  "cpi_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
