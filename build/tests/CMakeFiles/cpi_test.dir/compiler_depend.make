# Empty compiler generated dependencies file for cpi_test.
# This may be replaced when dependencies are built.
