file(REMOVE_RECURSE
  "CMakeFiles/cfl_match_test.dir/cfl_match_test.cc.o"
  "CMakeFiles/cfl_match_test.dir/cfl_match_test.cc.o.d"
  "cfl_match_test"
  "cfl_match_test.pdb"
  "cfl_match_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfl_match_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
