# Empty dependencies file for cfl_match_test.
# This may be replaced when dependencies are built.
