# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/decomp_test[1]_include.cmake")
include("/root/repo/build/tests/cpi_test[1]_include.cmake")
include("/root/repo/build/tests/cfl_match_test[1]_include.cmake")
include("/root/repo/build/tests/engines_test[1]_include.cmake")
include("/root/repo/build/tests/compress_test[1]_include.cmake")
include("/root/repo/build/tests/gen_test[1]_include.cmake")
include("/root/repo/build/tests/order_test[1]_include.cmake")
include("/root/repo/build/tests/harness_test[1]_include.cmake")
include("/root/repo/build/tests/cost_model_test[1]_include.cmake")
include("/root/repo/build/tests/leaf_match_test[1]_include.cmake")
include("/root/repo/build/tests/turboiso_test[1]_include.cmake")
include("/root/repo/build/tests/iterator_test[1]_include.cmake")
include("/root/repo/build/tests/enumerator_test[1]_include.cmake")
