# Empty dependencies file for decomposition_explorer.
# This may be replaced when dependencies are built.
