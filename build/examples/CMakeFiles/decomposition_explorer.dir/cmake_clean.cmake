file(REMOVE_RECURSE
  "CMakeFiles/decomposition_explorer.dir/decomposition_explorer.cpp.o"
  "CMakeFiles/decomposition_explorer.dir/decomposition_explorer.cpp.o.d"
  "decomposition_explorer"
  "decomposition_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decomposition_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
