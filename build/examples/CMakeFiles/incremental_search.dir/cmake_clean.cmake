file(REMOVE_RECURSE
  "CMakeFiles/incremental_search.dir/incremental_search.cpp.o"
  "CMakeFiles/incremental_search.dir/incremental_search.cpp.o.d"
  "incremental_search"
  "incremental_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incremental_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
