# Empty compiler generated dependencies file for incremental_search.
# This may be replaced when dependencies are built.
