# Empty compiler generated dependencies file for protein_motif_search.
# This may be replaced when dependencies are built.
