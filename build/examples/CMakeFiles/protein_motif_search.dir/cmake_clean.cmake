file(REMOVE_RECURSE
  "CMakeFiles/protein_motif_search.dir/protein_motif_search.cpp.o"
  "CMakeFiles/protein_motif_search.dir/protein_motif_search.cpp.o.d"
  "protein_motif_search"
  "protein_motif_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protein_motif_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
